#include "common/stats_registry.h"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/json.h"
#include "common/logging.h"

namespace pimsim {

namespace {

bool
suffixMatches(const std::string &path, const std::string &suffix)
{
    if (path == suffix)
        return true;
    return path.size() > suffix.size() + 1 &&
           path.compare(path.size() - suffix.size(), suffix.size(),
                        suffix) == 0 &&
           path[path.size() - suffix.size() - 1] == '.';
}

} // namespace

void
StatsRegistry::addGroup(const std::string &path, StatGroup *group)
{
    PIMSIM_ASSERT(group != nullptr, "null StatGroup for ", path);
    for (auto &entry : groups_) {
        if (entry.first == path) {
            entry.second = group;
            return;
        }
    }
    groups_.emplace_back(path, group);
}

void
StatsRegistry::addHistogram(const std::string &path, Histogram *histogram)
{
    PIMSIM_ASSERT(histogram != nullptr, "null Histogram for ", path);
    for (auto &entry : histograms_) {
        if (entry.first == path) {
            entry.second = histogram;
            return;
        }
    }
    histograms_.emplace_back(path, histogram);
}

void
StatsRegistry::removePrefix(const std::string &prefix)
{
    const auto starts = [&](const auto &entry) {
        return entry.first.compare(0, prefix.size(), prefix) == 0;
    };
    groups_.erase(
        std::remove_if(groups_.begin(), groups_.end(), starts),
        groups_.end());
    histograms_.erase(
        std::remove_if(histograms_.begin(), histograms_.end(), starts),
        histograms_.end());
}

const StatGroup *
StatsRegistry::group(const std::string &path) const
{
    for (const auto &entry : groups_) {
        if (entry.first == path)
            return entry.second;
    }
    return nullptr;
}

const Histogram *
StatsRegistry::histogram(const std::string &path) const
{
    for (const auto &entry : histograms_) {
        if (entry.first == path)
            return entry.second;
    }
    return nullptr;
}

std::uint64_t
StatsRegistry::counterTotal(const std::string &path_suffix,
                            const std::string &stat) const
{
    std::uint64_t total = 0;
    for (const auto &entry : groups_) {
        if (suffixMatches(entry.first, path_suffix))
            total += entry.second->counter(stat);
    }
    return total;
}

void
StatsRegistry::reset()
{
    for (auto &entry : groups_)
        entry.second->reset();
    for (auto &entry : histograms_)
        entry.second->reset();
}

void
StatsRegistry::retainExemplars(
    const std::unordered_set<std::uint64_t> &kept)
{
    for (auto &entry : histograms_)
        entry.second->retainExemplars(kept);
    for (auto &entry : groups_) {
        for (const auto &kv : entry.second->histograms()) {
            if (kv.second)
                kv.second->retainExemplars(kept);
        }
    }
}

void
StatsRegistry::dumpText(std::ostream &os) const
{
    for (const auto &[path, group] : groups_) {
        for (const auto &kv : group->counters())
            os << path << "." << kv.first << " " << kv.second << "\n";
        for (const auto &kv : group->scalars())
            os << path << "." << kv.first << " " << kv.second << "\n";
    }
    for (const auto &[path, hist] : histograms_) {
        os << path << ".count " << hist->count() << "\n";
        os << path << ".mean " << hist->mean() << "\n";
        os << path << ".p50 " << hist->p50() << "\n";
        os << path << ".p95 " << hist->p95() << "\n";
        os << path << ".p99 " << hist->p99() << "\n";
        os << path << ".max " << hist->max() << "\n";
    }
}

void
StatsRegistry::dumpJson(std::ostream &os) const
{
    JsonWriter w(os);
    w.beginObject();
    w.key("groups").beginObject();
    for (const auto &[path, group] : groups_) {
        w.key(path).beginObject();
        w.key("counters").beginObject();
        for (const auto &kv : group->counters())
            w.field(kv.first, kv.second);
        w.endObject();
        if (!group->scalars().empty()) {
            w.key("scalars").beginObject();
            for (const auto &kv : group->scalars())
                w.field(kv.first, kv.second);
            w.endObject();
        }
        w.endObject();
    }
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &[path, hist] : histograms_) {
        w.key(path).beginObject();
        w.field("count", hist->count());
        w.field("mean", hist->mean());
        w.field("min", hist->min());
        w.field("p50", hist->p50());
        w.field("p95", hist->p95());
        w.field("p99", hist->p99());
        w.field("max", hist->max());
        w.field("overflow", hist->overflow());
        if (!hist->exemplars().empty()) {
            // Trace ids as strings: they pair with the "trace" args in
            // the Chrome trace file, which are strings too.
            w.key("exemplars").beginArray();
            for (const auto &[bucket, slot] : hist->exemplars()) {
                for (const auto &ex : slot) {
                    w.beginObject();
                    w.field("bucket_lo", bucket * hist->bucketWidth());
                    w.field("value", ex.value);
                    w.field("trace_id", std::to_string(ex.traceId));
                    w.endObject();
                }
            }
            w.endArray();
        }
        w.endObject();
    }
    w.endObject();
    w.endObject();
    os << "\n";
}

bool
StatsRegistry::writeJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        PIMSIM_WARN("cannot open stats output '", path, "'");
        return false;
    }
    dumpJson(os);
    return static_cast<bool>(os);
}

} // namespace pimsim
