#include "common/bf16.h"

#include <cstring>
#include <ostream>

namespace pimsim {

namespace {

std::uint32_t
floatBits(float f)
{
    std::uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

float
bitsFloat(std::uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

} // namespace

std::uint16_t
floatToBf16Bits(float value)
{
    std::uint32_t f = floatBits(value);
    if ((f & 0x7fffffffu) > 0x7f800000u) {
        // NaN: keep quiet with non-zero payload.
        std::uint16_t hi = static_cast<std::uint16_t>(f >> 16);
        return static_cast<std::uint16_t>(hi | 0x0040u);
    }
    // RNE on the low 16 bits.
    const std::uint32_t lsb = (f >> 16) & 1u;
    const std::uint32_t rounding = 0x7fffu + lsb;
    f += rounding;
    return static_cast<std::uint16_t>(f >> 16);
}

float
bf16BitsToFloat(std::uint16_t bits)
{
    return bitsFloat(static_cast<std::uint32_t>(bits) << 16);
}

void
bf16ToFloatN(const std::uint16_t *in, float *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = bitsFloat(static_cast<std::uint32_t>(in[i]) << 16);
}

void
floatToBf16N(const float *in, std::uint16_t *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = floatToBf16Bits(in[i]);
}

void
bf16RoundFloatN(float *vals, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        vals[i] = bitsFloat(static_cast<std::uint32_t>(floatToBf16Bits(vals[i]))
                            << 16);
}

Bf16::Bf16(float value) : bits_(floatToBf16Bits(value)) {}

float
Bf16::toFloat() const
{
    return bf16BitsToFloat(bits_);
}

Bf16
bf16Add(Bf16 a, Bf16 b)
{
    // BF16 has an 8-bit significand; a float add of two BF16 values is
    // exact, so one final rounding is correct.
    return Bf16(a.toFloat() + b.toFloat());
}

Bf16
bf16Mul(Bf16 a, Bf16 b)
{
    return Bf16(a.toFloat() * b.toFloat());
}

Bf16
bf16Mac(Bf16 a, Bf16 b, Bf16 c)
{
    return bf16Add(bf16Mul(a, b), c);
}

std::ostream &
operator<<(std::ostream &os, Bf16 b)
{
    return os << b.toFloat();
}

} // namespace pimsim
