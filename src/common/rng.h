/**
 * @file
 * Deterministic random number generation.
 *
 * All randomness in the simulator and the workload generators flows from
 * explicitly seeded generators so that every run is reproducible: same
 * seed implies same cycles and same bytes.
 */

#ifndef PIMSIM_COMMON_RNG_H
#define PIMSIM_COMMON_RNG_H

#include <cstdint>

#include "common/fp16.h"

namespace pimsim {

/** SplitMix64: used to expand a single seed into generator state. */
class SplitMix64
{
  public:
    explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

    constexpr std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state_;
};

/** Xoshiro256** — fast, high-quality PRNG for bulk data generation. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed);

    /** Next 64 random bits. */
    std::uint64_t next();

    /** Uniform in [0, bound). bound must be non-zero. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform float in [lo, hi). */
    float nextFloat(float lo, float hi);

    /** Random finite FP16 value roughly uniform in [-2, 2) — the range
     *  keeps long MAC chains numerically well-behaved in FP16. */
    Fp16 nextFp16();

    /** Random FP16 drawn from the full finite range including subnormals. */
    Fp16 nextFp16AnyFinite();

  private:
    std::uint64_t state_[4];
};

} // namespace pimsim

#endif // PIMSIM_COMMON_RNG_H
