#include "common/logging.h"

#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace pimsim {

namespace {
bool quiet = false;
} // namespace

void
setQuiet(bool q)
{
    quiet = q;
}

bool
isQuiet()
{
    return quiet;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quiet)
        std::cerr << "warn: " << msg << std::endl;
}

void
informImpl(const std::string &msg)
{
    if (!quiet)
        std::cout << "info: " << msg << std::endl;
}

} // namespace pimsim
