#include "common/logging.h"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <stdexcept>

namespace pimsim {

namespace {
bool quiet = false;
/** Warnings can fire from worker threads (e.g. a PIM unit fault while
 *  channels tick in parallel); serialise emission so lines stay whole. */
std::mutex logMutex;
} // namespace

void
setQuiet(bool q)
{
    quiet = q;
}

bool
isQuiet()
{
    return quiet;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << " @ " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!quiet) {
        std::lock_guard<std::mutex> lock(logMutex);
        std::cerr << "warn: " << msg << std::endl;
    }
}

void
informImpl(const std::string &msg)
{
    if (!quiet) {
        std::lock_guard<std::mutex> lock(logMutex);
        std::cout << "info: " << msg << std::endl;
    }
}

} // namespace pimsim
