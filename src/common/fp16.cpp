#include "common/fp16.h"

#include <array>
#include <cmath>
#include <cstring>
#include <ostream>

namespace pimsim {

namespace {

/** Bit-cast float <-> uint32 without violating aliasing rules. */
std::uint32_t
floatBits(float f)
{
    std::uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

float
bitsFloat(std::uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

} // namespace

Fp16Bits
floatToFp16Bits(float value)
{
    const std::uint32_t f = floatBits(value);
    const std::uint32_t sign = (f >> 16) & 0x8000u;
    const std::uint32_t abs = f & 0x7fffffffu;

    // NaN: preserve a quiet NaN with some payload.
    if (abs > 0x7f800000u) {
        const std::uint32_t mant = (abs >> 13) & 0x3ffu;
        return static_cast<Fp16Bits>(sign | 0x7c00u | (mant ? mant : 1u));
    }
    // Infinity and overflow: half's largest finite value is 65504, and
    // RNE sends every |x| >= 65520 (bits 0x477ff000) to infinity.
    if (abs >= 0x477ff000u) // 65520.0f and above, including +/-inf
        return static_cast<Fp16Bits>(sign | 0x7c00u);

    std::int32_t exp = static_cast<std::int32_t>(abs >> 23) - 127;
    std::uint32_t mant = abs & 0x7fffffu;

    if (exp < -24) {
        // Underflows to zero even after rounding (|x| < 2^-25 exactly
        // rounds to 0; |x| == 2^-25 ties to even -> 0).
        if (exp == -25 && mant != 0)
            return static_cast<Fp16Bits>(sign | 1u); // round up to min subnormal
        return static_cast<Fp16Bits>(sign);
    }

    if (exp < -14) {
        // Subnormal half: shift the implicit-1 mantissa right.
        mant |= 0x800000u;
        const int shift = -exp - 14 + 13; // bits to drop (14..24)
        const std::uint32_t dropped = mant & ((1u << shift) - 1u);
        const std::uint32_t half = 1u << (shift - 1);
        std::uint32_t result = mant >> shift;
        if (dropped > half || (dropped == half && (result & 1u)))
            ++result;
        return static_cast<Fp16Bits>(sign | result);
    }

    // Normal range: drop 13 mantissa bits with RNE.
    std::uint32_t hexp = static_cast<std::uint32_t>(exp + 15);
    std::uint32_t hmant = mant >> 13;
    const std::uint32_t dropped = mant & 0x1fffu;
    if (dropped > 0x1000u || (dropped == 0x1000u && (hmant & 1u))) {
        ++hmant;
        if (hmant == 0x400u) { // mantissa overflow -> bump exponent
            hmant = 0;
            ++hexp; // cannot reach 31: |x| >= 65520 was cut above
        }
    }
    return static_cast<Fp16Bits>(sign | (hexp << 10) | hmant);
}

float
fp16BitsToFloat(Fp16Bits bits)
{
    const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u) << 16;
    const std::uint32_t exp = (bits >> 10) & 0x1fu;
    const std::uint32_t mant = bits & 0x3ffu;

    if (exp == 31) { // inf / nan
        return bitsFloat(sign | 0x7f800000u | (mant << 13));
    }
    if (exp == 0) {
        if (mant == 0)
            return bitsFloat(sign); // +/- 0
        // Subnormal: normalise.
        int e = -14;
        std::uint32_t m = mant;
        while ((m & 0x400u) == 0) {
            m <<= 1;
            --e;
        }
        m &= 0x3ffu;
        const std::uint32_t fexp = static_cast<std::uint32_t>(e + 127);
        return bitsFloat(sign | (fexp << 23) | (m << 13));
    }
    const std::uint32_t fexp = exp - 15 + 127;
    return bitsFloat(sign | (fexp << 23) | (mant << 13));
}

namespace {

/**
 * Widening table: all 65536 binary16 patterns pre-converted to float.
 * Built once on first use (thread-safe magic static); copying a float
 * out of the table preserves NaN payload bits exactly, so table lookups
 * are bit-identical to fp16BitsToFloat.
 */
const float *
fp16WidenTable()
{
    static const std::array<float, 65536> table = [] {
        std::array<float, 65536> t{};
        for (std::uint32_t i = 0; i < 65536; ++i)
            t[i] = fp16BitsToFloat(static_cast<Fp16Bits>(i));
        return t;
    }();
    return table.data();
}

/**
 * Branch-light float -> binary16 rounder for the batch kernels.
 *
 * The normal band uses one fused rebias + RNE: subtracting the
 * exponent-bias delta (112 << 23) and adding 0xfff + lsb rounds the low
 * 13 bits with ties-to-even, and a mantissa carry propagates into the
 * exponent — which also sends the [65520, 65536) band to infinity, the
 * same cut floatToFp16Bits makes explicitly. The exhaustive suite in
 * tests/fp16_test.cpp pins this bit-identical to the scalar rounder.
 */
inline Fp16Bits
roundFloatBitsToFp16(std::uint32_t f)
{
    const std::uint32_t sign = (f >> 16) & 0x8000u;
    const std::uint32_t abs = f & 0x7fffffffu;
    if (abs >= 0x38800000u) { // normal half range and above
        if (abs >= 0x47800000u) { // inf / NaN / >= 65536
            if (abs > 0x7f800000u) {
                const std::uint32_t mant = (abs >> 13) & 0x3ffu;
                return static_cast<Fp16Bits>(sign | 0x7c00u |
                                             (mant ? mant : 1u));
            }
            return static_cast<Fp16Bits>(sign | 0x7c00u);
        }
        return static_cast<Fp16Bits>(
            sign |
            ((abs - 0x38000000u + 0xfffu + ((abs >> 13) & 1u)) >> 13));
    }
    // Subnormal / underflow band (|x| < 2^-14), mirroring the scalar path.
    const std::int32_t exp = static_cast<std::int32_t>(abs >> 23) - 127;
    std::uint32_t mant = abs & 0x7fffffu;
    if (exp < -24) {
        return static_cast<Fp16Bits>(
            sign | ((exp == -25 && mant != 0) ? 1u : 0u));
    }
    mant |= 0x800000u;
    const int shift = -exp - 1; // == -exp - 14 + 13
    const std::uint32_t dropped = mant & ((1u << shift) - 1u);
    const std::uint32_t half = 1u << (shift - 1);
    std::uint32_t result = mant >> shift;
    if (dropped > half || (dropped == half && (result & 1u)))
        ++result;
    return static_cast<Fp16Bits>(sign | result);
}

} // namespace

void
fp16ToFloatN(const Fp16Bits *in, float *out, std::size_t n)
{
    const float *table = fp16WidenTable();
    for (std::size_t i = 0; i < n; ++i)
        out[i] = table[in[i]];
}

void
floatToFp16N(const float *in, Fp16Bits *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = roundFloatBitsToFp16(floatBits(in[i]));
}

void
fp16RoundFloatN(float *vals, std::size_t n)
{
    const float *table = fp16WidenTable();
    for (std::size_t i = 0; i < n; ++i)
        vals[i] = table[roundFloatBitsToFp16(floatBits(vals[i]))];
}

Fp16::Fp16(float value) : bits_(floatToFp16Bits(value)) {}

float
Fp16::toFloat() const
{
    return fp16BitsToFloat(bits_);
}

bool
Fp16::isInf() const
{
    return (bits_ & 0x7fffu) == 0x7c00u;
}

bool
Fp16::isNan() const
{
    return (bits_ & 0x7c00u) == 0x7c00u && (bits_ & 0x3ffu) != 0;
}

Fp16
fp16Add(Fp16 a, Fp16 b)
{
    // float holds every binary16 value exactly and a single float add of
    // two binary16 values is exact (24-bit significand >= 11+11), so
    // rounding once at the end implements a correctly rounded FP16 add.
    return Fp16(a.toFloat() + b.toFloat());
}

Fp16
fp16Mul(Fp16 a, Fp16 b)
{
    // The product of two 11-bit significands fits in 22 bits < 24, so the
    // float product is exact and one final rounding is correct.
    return Fp16(a.toFloat() * b.toFloat());
}

Fp16
fp16Mac(Fp16 a, Fp16 b, Fp16 c)
{
    // Non-fused: round the product to FP16, then round the sum.
    return fp16Add(fp16Mul(a, b), c);
}

Fp16
fp16Mad(Fp16 a, Fp16 b, Fp16 c)
{
    return fp16Mac(a, b, c);
}

Fp16
fp16Relu(Fp16 a)
{
    // Hardware ReLU is a 2-to-1 mux on the sign bit (Section III-C).
    return a.signBit() ? Fp16() : a;
}

std::ostream &
operator<<(std::ostream &os, Fp16 h)
{
    return os << h.toFloat();
}

} // namespace pimsim
