#include "common/rng.h"

#include "common/logging.h"

namespace pimsim {

namespace {

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    SplitMix64 sm(seed);
    for (auto &s : state_)
        s = sm.next();
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    PIMSIM_ASSERT(bound != 0, "nextBelow(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % bound;
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

float
Rng::nextFloat(float lo, float hi)
{
    return lo + static_cast<float>(nextDouble()) * (hi - lo);
}

Fp16
Rng::nextFp16()
{
    return Fp16(nextFloat(-2.0f, 2.0f));
}

Fp16
Rng::nextFp16AnyFinite()
{
    // Draw raw bit patterns, rejecting Inf/NaN (exponent field all ones).
    for (;;) {
        const auto bits = static_cast<Fp16Bits>(next() & 0xffffu);
        if ((bits & 0x7c00u) != 0x7c00u)
            return Fp16::fromBits(bits);
    }
}

} // namespace pimsim
