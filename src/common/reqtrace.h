/**
 * @file
 * Per-request causal tracing with tail-based sampling.
 *
 * TraceSession (common/trace.h) records *track*-oriented timelines:
 * what each channel / shard / host was doing over time. RequestTracer
 * adds the *request*-oriented view: a RequestTraceContext (trace id,
 * span id, parent span id) is minted when a request is admitted and
 * propagated through every layer it crosses — serving queue and batch
 * attempts, cluster RPCs with failover and hedging, LLM decode
 * iterations and KV evictions — so one request renders as a connected
 * span tree in Perfetto, stitched across tracks by flow events.
 *
 * Recording everything for every request is unaffordable on
 * million-request campaigns, so sampling is **tail-based**: every
 * request's events are buffered cheaply (interned names, POD records —
 * no JSON, no std::string per event) until the request reaches a
 * terminal state, and the buffer is kept only if the request
 *
 *   - erred (failed, rejected, timed out),
 *   - missed its deadline/SLO,
 *   - was hedged or failed over,
 *   - falls in the slowest-k% of terminals seen so far, or
 *   - is picked by a deterministic seeded head-sample of the rest.
 *
 * Everything is decided from (traceId, seed) and the observed outcome,
 * so the same seed replays to a bit-identical kept set. Kept trace ids
 * are attached as exemplars to latency Histogram buckets (stats.h) so
 * a p99 bucket in the stats JSON links straight to a full trace.
 *
 * flush() materialises the kept buffers into a TraceSession; every
 * span/instant carries "trace"/"span"/"parent" args (decimal strings)
 * from which the tree can be rebuilt, and flow chains get
 * session-unique ids.
 */

#ifndef PIMSIM_COMMON_REQTRACE_H
#define PIMSIM_COMMON_REQTRACE_H

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/trace.h"

namespace pimsim {

/**
 * The causal identity a request carries through the stack. POD and
 * cheap to copy; traceId 0 means "not traced" and every tracer call
 * with an inactive context is a no-op.
 */
struct RequestTraceContext
{
    std::uint64_t traceId = 0;
    std::uint32_t spanId = 0;
    std::uint32_t parentSpanId = 0;

    bool active() const { return traceId != 0; }
};

/** What happened to a request, observed at its terminal state. */
struct TraceOutcome
{
    double latencyNs = 0.0;
    bool erred = false;          ///< failed / rejected / timed out
    bool deadlineMissed = false; ///< completed but blew the SLO
    bool hedged = false;         ///< a backup copy was fired
    bool failedOver = false;     ///< retried on another shard/host

    /** Requests in the always-keep class of the sampling policy. */
    bool mustKeep() const
    {
        return erred || deadlineMissed || hedged || failedOver;
    }
};

struct RequestTracerConfig
{
    /** Deterministic head-sample rate for unremarkable requests. */
    double headSampleRate = 0.01;
    /** Keep roughly this fraction of slowest terminals (0 disables). */
    double slowestFraction = 0.01;
    /** Seed for the head-sample hash (replay-stable). */
    std::uint64_t seed = 1;
    /** Per-trace buffered-event cap; extra events are counted, not kept. */
    std::size_t maxEventsPerTrace = 4096;
};

/**
 * Buffers per-request events between begin() and end(), applies the
 * tail-based keep policy at end(), and materialises survivors into a
 * TraceSession on flush().
 */
class RequestTracer
{
  public:
    explicit RequestTracer(const RequestTracerConfig &config = {})
        : config_(config)
    {
    }

    /** Mint a new trace with its root span. `ts_ns` = admission time. */
    RequestTraceContext begin(double ts_ns);

    /** Mint a child span context under `parent` (same trace). */
    RequestTraceContext child(const RequestTraceContext &parent);

    /** Buffer a duration span recorded as `ctx`'s node in the tree. */
    void span(const RequestTraceContext &ctx, int pid, int tid,
              const std::string &name, const std::string &cat,
              double start_ns, double dur_ns);

    /** Buffer a point event attached to `ctx`'s node. */
    void instant(const RequestTraceContext &ctx, int pid, int tid,
                 const std::string &name, const std::string &cat,
                 double ts_ns);

    /**
     * Buffer a flow arrow from (src_pid, src_tid, src_ts) to
     * (dst_pid, dst_tid, dst_ts) — e.g. a cross-host failover or a
     * root-to-iteration link. The pair shares one flow id, remapped to
     * a session-unique id at flush().
     */
    void flow(const RequestTraceContext &ctx, const std::string &name,
              int src_pid, int src_tid, double src_ts_ns, int dst_pid,
              int dst_tid, double dst_ts_ns);

    /**
     * The request reached a terminal state: decide its fate. Must-keep
     * and head-sampled traces are retained immediately; the rest
     * compete for the slowest-k% pool (losers are discarded, freeing
     * their buffers). Calling end() twice for one context is a no-op.
     */
    void end(const RequestTraceContext &ctx, const TraceOutcome &outcome);

    /**
     * Materialise every kept trace into `session`, in trace-id order.
     * Also promotes the surviving slowest-k% candidates. Idempotent
     * per-trace: flushed buffers are released.
     */
    void flush(TraceSession &session);

    /** Kept trace ids (stable after flush()). */
    const std::unordered_set<std::uint64_t> &keptTraceIds() const
    {
        return keptIds_;
    }
    bool kept(std::uint64_t trace_id) const
    {
        return keptIds_.count(trace_id) != 0;
    }

    const RequestTracerConfig &config() const { return config_; }
    std::uint64_t tracesStarted() const { return tracesStarted_; }
    std::uint64_t tracesEnded() const { return tracesEnded_; }
    std::uint64_t mustKeepCount() const { return mustKeep_; }
    std::uint64_t headSampledCount() const { return headSampled_; }
    /** Slowest-k% survivors (final only after flush()). */
    std::uint64_t slowKeptCount() const { return slowKept_; }
    std::uint64_t eventsBuffered() const { return eventsBuffered_; }
    std::uint64_t eventsTruncated() const { return eventsTruncated_; }
    std::uint64_t eventsFlushed() const { return eventsFlushed_; }
    /** Live buffered events across active + retained traces. */
    std::uint64_t eventsLive() const { return eventsLive_; }

    /** Would this trace id pass the deterministic head sample? */
    bool headSampled(std::uint64_t trace_id) const;

  private:
    /** Compact POD event record; strings are interned once per name. */
    struct BufferedEvent
    {
        double tsNs = 0.0;
        double durNs = 0.0;
        std::uint32_t spanId = 0;
        std::uint32_t parentSpanId = 0;
        std::uint32_t flowId = 0;
        std::uint16_t nameId = 0;
        std::uint8_t catId = 0;
        std::uint8_t phase = 0; ///< TraceEvent::Phase
    };

    struct TraceBuffer
    {
        std::vector<BufferedEvent> events;
        /** Packed (pid << 16 | tid) per event, parallel to `events`. */
        std::vector<std::uint32_t> tracks;
        std::uint32_t rootSpanId = 0;
        std::uint32_t truncated = 0;
    };

    std::uint16_t internName(const std::string &name);
    std::uint8_t internCat(const std::string &cat);
    void buffer(const RequestTraceContext &ctx, TraceEvent::Phase phase,
                int pid, int tid, const std::string &name,
                const std::string &cat, double ts_ns, double dur_ns,
                std::uint32_t flow_id);
    void keep(std::uint64_t trace_id, TraceBuffer &&buf);
    void discard(TraceBuffer &&buf);
    void flushTrace(TraceSession &session, std::uint64_t trace_id,
                    const TraceBuffer &buf,
                    std::unordered_map<std::uint32_t, std::uint64_t>
                        &flow_remap);

    RequestTracerConfig config_;
    std::uint64_t nextTraceId_ = 1;
    std::uint32_t nextSpanId_ = 1;
    std::uint32_t nextFlowId_ = 1;

    std::unordered_map<std::uint64_t, TraceBuffer> active_;
    std::map<std::uint64_t, TraceBuffer> retained_;
    /** Slowest-k% pool keyed (latency, traceId); begin() = fastest. */
    std::map<std::pair<double, std::uint64_t>, TraceBuffer> candidates_;
    std::unordered_set<std::uint64_t> keptIds_;

    std::vector<std::string> names_;
    std::unordered_map<std::string, std::uint16_t> nameIds_;
    std::vector<std::string> cats_;
    std::unordered_map<std::string, std::uint8_t> catIds_;

    std::uint64_t tracesStarted_ = 0;
    std::uint64_t tracesEnded_ = 0;
    std::uint64_t mustKeep_ = 0;
    std::uint64_t headSampled_ = 0;
    std::uint64_t slowKept_ = 0;
    std::uint64_t eventsBuffered_ = 0;
    std::uint64_t eventsTruncated_ = 0;
    std::uint64_t eventsFlushed_ = 0;
    std::uint64_t eventsLive_ = 0;
};

} // namespace pimsim

#endif // PIMSIM_COMMON_REQTRACE_H
