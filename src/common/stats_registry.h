/**
 * @file
 * Hierarchical registry of every StatGroup / Histogram in a system.
 *
 * Components keep owning their StatGroups (the registry stores
 * non-owning pointers); what the registry adds is one place where a
 * whole system's statistics can be enumerated, cross-summed, reset
 * between measurement windows, and dumped as human-readable text or
 * machine-readable JSON. PimSystem builds one per instance and
 * registers every controller, pseudo channel and PIM channel under
 * dotted paths ("ch3.ctrl", "ch3.pch", "ch3.pim", "serve", ...); the
 * serving engine adds its latency histograms.
 */

#ifndef PIMSIM_COMMON_STATS_REGISTRY_H
#define PIMSIM_COMMON_STATS_REGISTRY_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"

namespace pimsim {

/** Non-owning, ordered registry of named stat groups and histograms. */
class StatsRegistry
{
  public:
    /** Register a group under `path`; replaces an existing entry. */
    void addGroup(const std::string &path, StatGroup *group);

    /** Register a histogram under `path`; replaces an existing entry. */
    void addHistogram(const std::string &path, Histogram *histogram);

    /** Drop every registration whose path starts with `prefix`. */
    void removePrefix(const std::string &prefix);

    std::size_t numGroups() const { return groups_.size(); }
    std::size_t numHistograms() const { return histograms_.size(); }

    /** The group registered at exactly `path` (nullptr if absent). */
    const StatGroup *group(const std::string &path) const;

    /** The histogram registered at exactly `path` (nullptr if absent). */
    const Histogram *histogram(const std::string &path) const;

    /**
     * Sum of counter `stat` over every group whose path equals
     * `path_suffix` or ends with ".<path_suffix>" — e.g.
     * counterTotal("pch", "rd") sums the device RD count over all
     * channels.
     */
    std::uint64_t counterTotal(const std::string &path_suffix,
                               const std::string &stat) const;

    /** Reset every registered group and histogram (new window). */
    void reset();

    /**
     * Prune histogram exemplars to trace ids in `kept` — called after
     * tail-based sampling so a stats dump never links to a discarded
     * trace (see Histogram::retainExemplars).
     */
    void retainExemplars(const std::unordered_set<std::uint64_t> &kept);

    /** "path.stat value" lines, groups in registration order. */
    void dumpText(std::ostream &os) const;

    /**
     * JSON object:
     * {"groups": {path: {"counters": {...}, "scalars": {...}}},
     *  "histograms": {path: {"count": ..., "mean": ..., "p50": ...}}}
     */
    void dumpJson(std::ostream &os) const;

    /** dumpJson() to a file; returns false (and warns) on failure. */
    bool writeJsonFile(const std::string &path) const;

  private:
    std::vector<std::pair<std::string, StatGroup *>> groups_;
    std::vector<std::pair<std::string, Histogram *>> histograms_;
};

} // namespace pimsim

#endif // PIMSIM_COMMON_STATS_REGISTRY_H
