/**
 * @file
 * Software IEEE-754 binary16 ("half precision") arithmetic.
 *
 * The PIM execution unit in the paper (Section IV) computes with FP16
 * multipliers and adders. We model each FPU lane as performing the
 * operation in wider precision and rounding the result back to binary16
 * with round-to-nearest-even, which matches a conventional non-fused
 * FP16 datapath. Conversions are implemented in portable integer code
 * (no reliance on compiler __fp16 support) and handle subnormals,
 * infinities and NaNs.
 */

#ifndef PIMSIM_COMMON_FP16_H
#define PIMSIM_COMMON_FP16_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>

#include "common/types.h"

namespace pimsim {

/**
 * Value type wrapping an IEEE-754 binary16 bit pattern.
 *
 * Fp16 is a trivially copyable 2-byte value so vectors of Fp16 can be
 * memcpy'd directly into the simulated DRAM data store.
 */
class Fp16
{
  public:
    /** Zero-initialised (positive zero). */
    constexpr Fp16() : bits_(0) {}

    /** Construct from a raw bit pattern. */
    static constexpr Fp16 fromBits(Fp16Bits bits)
    {
        Fp16 h;
        h.bits_ = bits;
        return h;
    }

    /** Convert from float with round-to-nearest-even. */
    explicit Fp16(float value);

    /** Widen to float (exact). */
    float toFloat() const;

    /** Raw bit pattern. */
    constexpr Fp16Bits bits() const { return bits_; }

    /** True for +/-Inf. */
    bool isInf() const;
    /** True for any NaN. */
    bool isNan() const;
    /** True for +/-0. */
    bool isZero() const { return (bits_ & 0x7fff) == 0; }
    /** Sign bit (1 == negative). */
    constexpr bool signBit() const { return (bits_ >> 15) != 0; }

    /** Bitwise equality (distinguishes -0 from +0; NaN == NaN iff same bits). */
    constexpr bool operator==(const Fp16 &other) const
    {
        return bits_ == other.bits_;
    }
    constexpr bool operator!=(const Fp16 &other) const
    {
        return bits_ != other.bits_;
    }

  private:
    Fp16Bits bits_;
};

static_assert(sizeof(Fp16) == 2, "Fp16 must be exactly two bytes");

/** FP16 addition: round(a + b) with RNE. */
Fp16 fp16Add(Fp16 a, Fp16 b);

/** FP16 multiplication: round(a * b) with RNE. */
Fp16 fp16Mul(Fp16 a, Fp16 b);

/** FP16 multiply-accumulate: round(round(a * b) + c), non-fused. */
Fp16 fp16Mac(Fp16 a, Fp16 b, Fp16 c);

/** FP16 multiply-add: round(round(a * b) + c), non-fused (same datapath as MAC). */
Fp16 fp16Mad(Fp16 a, Fp16 b, Fp16 c);

/** ReLU: zero if the sign bit is set (note -0 and negative NaN flush to +0). */
Fp16 fp16Relu(Fp16 a);

/** Convert a float to binary16 bits with round-to-nearest-even. */
Fp16Bits floatToFp16Bits(float value);

/** Widen binary16 bits to float. */
float fp16BitsToFloat(Fp16Bits bits);

/**
 * Batch conversion kernels for the PIM SIMD datapath.
 *
 * These are the convert-once passes the execution unit uses to process a
 * whole SIMD row: widen every lane to float, compute in float, round
 * back once. Each is bit-identical to applying the scalar conversion
 * per element (including NaN payloads, subnormals and the 65520
 * overflow cut); tests/fp16_test.cpp runs the exhaustive RNE suite
 * against both implementations.
 */
/** Widen `n` binary16 bit patterns to float (table-driven). */
void fp16ToFloatN(const Fp16Bits *in, float *out, std::size_t n);
/** Round `n` floats to binary16 bits with RNE. */
void floatToFp16N(const float *in, Fp16Bits *out, std::size_t n);
/** Round `n` floats to binary16 precision in place, keeping float
 *  representation: vals[i] = fp16BitsToFloat(floatToFp16Bits(vals[i])). */
void fp16RoundFloatN(float *vals, std::size_t n);

std::ostream &operator<<(std::ostream &os, Fp16 h);

} // namespace pimsim

#endif // PIMSIM_COMMON_FP16_H
