#include "common/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/json.h"
#include "common/logging.h"
#include "common/trace.h"

namespace pimsim {

// ---------------------------------------------------------------------------
// SloMonitor

SloMonitor::SloMonitor(const SloMonitorConfig &config) : config_(config)
{
    PIMSIM_ASSERT(config_.target > 0.0 && config_.target < 1.0,
                  "SLO target must be in (0, 1), got ", config_.target);
    PIMSIM_ASSERT(config_.windowNs > 0.0, "SLO window must be positive");
    if (config_.rules.empty()) {
        // Google SRE-style pair: a fast page on a hard burn and a slow
        // ticket on a sustained mild burn.
        config_.rules.push_back(SloAlertRule{"page", 10.0, 3, 1});
        config_.rules.push_back(SloAlertRule{"ticket", 3.0, 6, 2});
    }
    for (const auto &r : config_.rules) {
        PIMSIM_ASSERT(r.longWindows >= r.shortWindows &&
                          r.shortWindows >= 1,
                      "SLO rule '", r.name,
                      "' needs longWindows >= shortWindows >= 1");
    }
}

void
SloMonitor::observe(double ts_ns, bool good)
{
    const auto idx = static_cast<std::size_t>(
        std::max(0.0, ts_ns) / config_.windowNs);
    if (idx >= windows_.size())
        windows_.resize(idx + 1);
    if (good) {
        ++windows_[idx].good;
        ++totalGood_;
    } else {
        ++windows_[idx].bad;
        ++totalBad_;
    }
}

void
SloMonitor::feed(const std::vector<SloObservation> &observations)
{
    for (const auto &o : observations)
        observe(o);
}

double
SloMonitor::burnRate(std::size_t window, unsigned windows) const
{
    if (windows_.empty() || windows == 0)
        return 0.0;
    window = std::min(window, windows_.size() - 1);
    const std::size_t first =
        window + 1 >= windows ? window + 1 - windows : 0;
    std::uint64_t good = 0, bad = 0;
    for (std::size_t i = first; i <= window; ++i) {
        good += windows_[i].good;
        bad += windows_[i].bad;
    }
    const std::uint64_t total = good + bad;
    if (total == 0)
        return 0.0;
    const double bad_fraction =
        static_cast<double>(bad) / static_cast<double>(total);
    return bad_fraction / (1.0 - config_.target);
}

void
SloMonitor::finish(double horizon_ns)
{
    horizonNs_ = horizon_ns;
    const auto last = static_cast<std::size_t>(
        std::max(0.0, horizon_ns) / config_.windowNs);
    if (last >= windows_.size())
        windows_.resize(last + 1);

    transitions_.clear();
    intervals_.clear();
    for (const auto &rule : config_.rules) {
        bool firing = false;
        double fired_at = 0.0;
        for (std::size_t w = 0; w < windows_.size(); ++w) {
            const double long_burn = burnRate(w, rule.longWindows);
            const double short_burn = burnRate(w, rule.shortWindows);
            const bool now = long_burn >= rule.burnThreshold &&
                             short_burn >= rule.burnThreshold;
            if (now == firing)
                continue;
            const double ts =
                static_cast<double>(w + 1) * config_.windowNs;
            transitions_.push_back(
                AlertTransition{rule.name, ts, now, long_burn,
                                short_burn});
            if (now) {
                fired_at = ts;
            } else {
                intervals_.push_back(
                    FiringInterval{rule.name, fired_at, ts});
            }
            firing = now;
        }
        if (firing)
            intervals_.push_back(FiringInterval{
                rule.name, fired_at,
                static_cast<double>(windows_.size()) *
                    config_.windowNs});
    }
}

bool
SloMonitor::firingBetween(double start_ns, double end_ns) const
{
    for (const auto &iv : intervals_) {
        if (iv.startNs < end_ns && iv.endNs > start_ns)
            return true;
    }
    return false;
}

bool
SloMonitor::firingBetween(const std::string &rule, double start_ns,
                          double end_ns) const
{
    for (const auto &iv : intervals_) {
        if (iv.rule == rule && iv.startNs < end_ns && iv.endNs > start_ns)
            return true;
    }
    return false;
}

void
SloMonitor::emitTrace(TraceSession &session) const
{
    session.setProcessName(kTracePidSlo, "slo");
    for (std::size_t r = 0; r < config_.rules.size(); ++r)
        session.setThreadName(kTracePidSlo, static_cast<int>(r),
                              "alert:" + config_.rules[r].name);
    for (const auto &t : transitions_) {
        int tid = 0;
        for (std::size_t r = 0; r < config_.rules.size(); ++r) {
            if (config_.rules[r].name == t.rule)
                tid = static_cast<int>(r);
        }
        char long_buf[32], short_buf[32];
        std::snprintf(long_buf, sizeof(long_buf), "%.3g", t.longBurn);
        std::snprintf(short_buf, sizeof(short_buf), "%.3g", t.shortBurn);
        session.instant(
            kTracePidSlo, tid,
            t.rule + (t.firing ? "-fire" : "-resolve"), "slo", t.tsNs,
            {{"long_burn", long_buf}, {"short_burn", short_buf}});
    }
}

void
SloMonitor::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("target", config_.target);
    w.field("window_ns", config_.windowNs);
    w.field("windows", static_cast<std::uint64_t>(windows_.size()));
    w.field("good", totalGood_);
    w.field("bad", totalBad_);
    w.key("rules").beginArray();
    for (const auto &rule : config_.rules) {
        std::uint64_t fires = 0;
        double firing_ns = 0.0;
        for (const auto &t : transitions_) {
            if (t.rule == rule.name && t.firing)
                ++fires;
        }
        for (const auto &iv : intervals_) {
            if (iv.rule == rule.name)
                firing_ns += iv.endNs - iv.startNs;
        }
        w.beginObject();
        w.field("name", rule.name);
        w.field("burn_threshold", rule.burnThreshold);
        w.field("long_windows", rule.longWindows);
        w.field("short_windows", rule.shortWindows);
        w.field("fired", fires);
        w.field("firing_ns", firing_ns);
        w.key("transitions").beginArray();
        for (const auto &t : transitions_) {
            if (t.rule != rule.name)
                continue;
            w.beginObject();
            w.field("ts_ns", t.tsNs);
            w.field("firing", t.firing);
            w.field("long_burn", t.longBurn);
            w.field("short_burn", t.shortBurn);
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

// ---------------------------------------------------------------------------
// MetricsTimeseries

MetricsTimeseries::MetricsTimeseries(double window_ns)
    : windowNs_(window_ns), nextWindowEndNs_(window_ns)
{
    PIMSIM_ASSERT(window_ns > 0.0,
                  "timeseries window must be positive, got ", window_ns);
}

void
MetricsTimeseries::trackCounter(const std::string &label,
                                const StatGroup *group,
                                const std::string &stat)
{
    PIMSIM_ASSERT(group != nullptr, "null StatGroup for ", label);
    CounterTrack t;
    t.label = label;
    t.group = group;
    t.stat = stat;
    t.prev = group->counter(stat);
    counters_.push_back(std::move(t));
}

void
MetricsTimeseries::trackHistogram(const std::string &label,
                                  const Histogram *hist)
{
    PIMSIM_ASSERT(hist != nullptr, "null Histogram for ", label);
    HistogramTrack t;
    t.label = label;
    t.hist = hist;
    t.prevBuckets = hist->buckets();
    t.prevOverflow = hist->overflow();
    t.prevCount = hist->count();
    histograms_.push_back(std::move(t));
}

namespace {

/**
 * Nearest-rank percentile of a delta bucket distribution, linearly
 * interpolated within the owning bucket (overflow resolves to the top
 * of the last regular bucket — the delta view has no per-window max).
 */
double
deltaPercentile(const std::vector<std::uint64_t> &delta,
                std::uint64_t overflow, std::uint64_t width, double p)
{
    std::uint64_t count = overflow;
    for (const auto c : delta)
        count += c;
    if (count == 0)
        return 0.0;
    const std::uint64_t rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(p * static_cast<double>(count) +
                                      0.5));
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < delta.size(); ++i) {
        if (delta[i] == 0)
            continue;
        if (cumulative + delta[i] >= rank) {
            const double within =
                static_cast<double>(rank - cumulative) /
                static_cast<double>(delta[i]);
            return static_cast<double>(i * width) +
                   within * static_cast<double>(width);
        }
        cumulative += delta[i];
    }
    return static_cast<double>(delta.size() * width);
}

} // namespace

void
MetricsTimeseries::closeWindow(double span_ns)
{
    const double span_s = span_ns > 0.0 ? span_ns / 1e9 : 1e-12;
    for (auto &t : counters_) {
        const std::uint64_t cur = t.group->counter(t.stat);
        const std::uint64_t delta = cur >= t.prev ? cur - t.prev : 0;
        t.rates.push_back(static_cast<double>(delta) / span_s);
        t.prev = cur;
    }
    for (auto &t : histograms_) {
        const auto &cur = t.hist->buckets();
        std::vector<std::uint64_t> delta(cur.size(), 0);
        for (std::size_t i = 0; i < cur.size(); ++i) {
            const std::uint64_t prev =
                i < t.prevBuckets.size() ? t.prevBuckets[i] : 0;
            delta[i] = cur[i] >= prev ? cur[i] - prev : 0;
        }
        const std::uint64_t overflow_delta =
            t.hist->overflow() >= t.prevOverflow
                ? t.hist->overflow() - t.prevOverflow
                : 0;
        const std::uint64_t count_delta =
            t.hist->count() >= t.prevCount
                ? t.hist->count() - t.prevCount
                : 0;
        const std::uint64_t width = t.hist->bucketWidth();
        t.counts.push_back(count_delta);
        t.p50.push_back(deltaPercentile(delta, overflow_delta, width, 0.50));
        t.p95.push_back(deltaPercentile(delta, overflow_delta, width, 0.95));
        t.p99.push_back(deltaPercentile(delta, overflow_delta, width, 0.99));
        t.prevBuckets = cur;
        t.prevOverflow = t.hist->overflow();
        t.prevCount = t.hist->count();
    }
    ++numWindows_;
}

void
MetricsTimeseries::advanceTo(double ts_ns)
{
    if (finished_)
        return;
    while (nextWindowEndNs_ <= ts_ns) {
        closeWindow(windowNs_);
        nextWindowEndNs_ += windowNs_;
    }
}

void
MetricsTimeseries::finish(double ts_ns)
{
    if (finished_)
        return;
    advanceTo(ts_ns);
    const double partial = ts_ns - (nextWindowEndNs_ - windowNs_);
    if (partial > 0.0)
        closeWindow(partial);
    finished_ = true;
}

const std::vector<double> &
MetricsTimeseries::counterRates(const std::string &label) const
{
    static const std::vector<double> empty;
    for (const auto &t : counters_) {
        if (t.label == label)
            return t.rates;
    }
    return empty;
}

std::vector<double>
MetricsTimeseries::histogramPercentiles(const std::string &label,
                                        double p) const
{
    for (const auto &t : histograms_) {
        if (t.label != label)
            continue;
        if (p <= 0.50)
            return t.p50;
        if (p <= 0.95)
            return t.p95;
        return t.p99;
    }
    return {};
}

void
MetricsTimeseries::writeJson(JsonWriter &w) const
{
    w.beginObject();
    w.field("window_ns", windowNs_);
    w.field("windows", static_cast<std::uint64_t>(numWindows_));
    w.key("counters").beginObject();
    for (const auto &t : counters_) {
        w.key(t.label).beginArray();
        for (const double r : t.rates)
            w.value(r);
        w.endArray();
    }
    w.endObject();
    w.key("histograms").beginObject();
    for (const auto &t : histograms_) {
        w.key(t.label).beginObject();
        w.key("count").beginArray();
        for (const auto c : t.counts)
            w.value(c);
        w.endArray();
        const auto series = [&w](const char *name,
                                 const std::vector<double> &v) {
            w.key(name).beginArray();
            for (const double x : v)
                w.value(x);
            w.endArray();
        };
        series("p50", t.p50);
        series("p95", t.p95);
        series("p99", t.p99);
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

bool
MetricsTimeseries::writeFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        PIMSIM_WARN("cannot open timeseries output '", path, "'");
        return false;
    }
    JsonWriter w(os, /*pretty=*/true);
    writeJson(w);
    os << "\n";
    return static_cast<bool>(os);
}

} // namespace pimsim
