#include "dram/datastore.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "dram/ecc.h"

namespace pimsim {

DataStore::DataStore(const HbmGeometry &geom) : geom_(geom) {}

Burst
DataStore::read(unsigned bank, unsigned row, unsigned col,
                EccStatus *ecc) const
{
    PIMSIM_ASSERT(bank < geom_.banksPerPch() && row < geom_.rowsPerBank &&
                      col < geom_.colsPerRow,
                  "read out of range: bank ", bank, " row ", row, " col ",
                  col);
    if (ecc)
        *ecc = EccStatus::Ok;
    Burst burst{};
    auto it = rows_.find(key(bank, row));
    if (it == rows_.end())
        return burst;
    std::memcpy(burst.data(), it->second.data() + col * kBurstBytes,
                kBurstBytes);

    if (geom_.onDieEcc) {
        const auto eit = ecc_.find(key(bank, row));
        if (eit != ecc_.end()) {
            EccBytes check;
            std::memcpy(check.data(), eit->second.data() + col * 4, 4);
            const EccStatus status = eccDecodeBurst(burst, check);
            if (ecc)
                *ecc = status;
            switch (status) {
              case EccStatus::Ok:
                break;
              case EccStatus::Corrected:
                ++eccCorrected_;
                break;
              case EccStatus::Uncorrectable:
                ++eccUncorrectable_;
                PIMSIM_WARN("uncorrectable ECC error at bank ", bank,
                            " row ", row, " col ", col);
                break;
            }
            if (status != EccStatus::Ok && eccHook_)
                eccHook_(bank, row, col, status);
        }
    }
    return burst;
}

Burst
DataStore::readRaw(unsigned bank, unsigned row, unsigned col) const
{
    PIMSIM_ASSERT(bank < geom_.banksPerPch() && row < geom_.rowsPerBank &&
                      col < geom_.colsPerRow,
                  "readRaw out of range: bank ", bank, " row ", row, " col ",
                  col);
    Burst burst{};
    auto it = rows_.find(key(bank, row));
    if (it == rows_.end())
        return burst;
    std::memcpy(burst.data(), it->second.data() + col * kBurstBytes,
                kBurstBytes);
    return burst;
}

void
DataStore::write(unsigned bank, unsigned row, unsigned col,
                 const Burst &data)
{
    PIMSIM_ASSERT(bank < geom_.banksPerPch() && row < geom_.rowsPerBank &&
                      col < geom_.colsPerRow,
                  "write out of range: bank ", bank, " row ", row, " col ",
                  col);
    auto &storage = rows_[key(bank, row)];
    if (storage.empty())
        storage.assign(geom_.bytesPerRow(), 0);
    std::memcpy(storage.data() + col * kBurstBytes, data.data(),
                kBurstBytes);

    if (geom_.onDieEcc) {
        auto &check_row = ecc_[key(bank, row)];
        if (check_row.empty()) {
            // Check bytes for an all-zero burst are non-zero only in the
            // parity sense; initialise every column's check correctly.
            check_row.assign(geom_.colsPerRow * 4, 0);
            const EccBytes zero_check = eccEncodeBurst(Burst{});
            for (unsigned c = 0; c < geom_.colsPerRow; ++c)
                std::memcpy(check_row.data() + c * 4, zero_check.data(),
                            4);
        }
        const EccBytes check = eccEncodeBurst(data);
        std::memcpy(check_row.data() + col * 4, check.data(), 4);
    }

    applyStuckBits(bank, row, col);
}

std::size_t
DataStore::allocatedBytes() const
{
    return rows_.size() * geom_.bytesPerRow();
}

std::vector<std::pair<unsigned, unsigned>>
DataStore::allocatedRows() const
{
    std::vector<std::pair<unsigned, unsigned>> out;
    out.reserve(rows_.size());
    for (const auto &[k, storage] : rows_) {
        (void)storage;
        out.emplace_back(static_cast<unsigned>(k >> 32),
                         static_cast<unsigned>(k & 0xffffffffu));
    }
    std::sort(out.begin(), out.end());
    return out;
}

void
DataStore::injectBitFlip(unsigned bank, unsigned row, unsigned col,
                         unsigned bit)
{
    PIMSIM_ASSERT(bit < kBurstBytes * 8, "bit index out of range");
    auto &storage = rows_[key(bank, row)];
    if (storage.empty())
        storage.assign(geom_.bytesPerRow(), 0);
    storage[col * kBurstBytes + bit / 8] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
}

void
DataStore::setStuckBit(unsigned bank, unsigned row, unsigned col,
                       unsigned bit, bool value)
{
    PIMSIM_ASSERT(bit < kBurstBytes * 8, "bit index out of range");
    auto &faults = stuck_[key(bank, row)];
    const auto it = std::find_if(faults.begin(), faults.end(),
                                 [&](const StuckBit &s) {
                                     return s.col == col && s.bit == bit;
                                 });
    if (it != faults.end()) {
        it->value = value;
    } else {
        faults.push_back(StuckBit{col, bit, value});
        ++stuckCount_;
    }
    // Force the cell immediately (the row allocates if needed so the
    // defect is visible even before the first write).
    auto &storage = rows_[key(bank, row)];
    if (storage.empty()) {
        storage.assign(geom_.bytesPerRow(), 0);
        if (geom_.onDieEcc) {
            auto &check_row = ecc_[key(bank, row)];
            if (check_row.empty()) {
                check_row.assign(geom_.colsPerRow * 4, 0);
                const EccBytes zero_check = eccEncodeBurst(Burst{});
                for (unsigned c = 0; c < geom_.colsPerRow; ++c)
                    std::memcpy(check_row.data() + c * 4,
                                zero_check.data(), 4);
            }
        }
    }
    applyStuckBits(bank, row, col);
}

void
DataStore::clearStuckBits()
{
    stuck_.clear();
    stuckCount_ = 0;
}

void
DataStore::applyStuckBits(unsigned bank, unsigned row, unsigned col)
{
    const auto it = stuck_.find(key(bank, row));
    if (it == stuck_.end())
        return;
    auto &storage = rows_[key(bank, row)];
    for (const StuckBit &s : it->second) {
        if (s.col != col)
            continue;
        std::uint8_t &byte = storage[s.col * kBurstBytes + s.bit / 8];
        const std::uint8_t mask =
            static_cast<std::uint8_t>(1u << (s.bit % 8));
        if (s.value)
            byte |= mask;
        else
            byte &= static_cast<std::uint8_t>(~mask);
    }
}

ScrubOutcome
DataStore::scrubBurst(unsigned bank, unsigned row, unsigned col)
{
    ScrubOutcome outcome;
    if (!geom_.onDieEcc)
        return outcome;
    const auto rit = rows_.find(key(bank, row));
    const auto eit = ecc_.find(key(bank, row));
    if (rit == rows_.end() || eit == ecc_.end())
        return outcome;

    std::uint8_t *bytes = rit->second.data() + col * kBurstBytes;
    std::uint8_t *check = eit->second.data() + col * 4;
    for (unsigned w = 0; w < 4; ++w) {
        std::uint64_t word = 0;
        for (unsigned b = 0; b < 8; ++b)
            word |= std::uint64_t{bytes[8 * w + b]} << (8 * b);
        std::uint64_t repaired = word;
        switch (eccDecodeWord(repaired, check[w])) {
          case EccStatus::Ok:
            break;
          case EccStatus::Corrected:
            ++outcome.corrected;
            for (unsigned b = 0; b < 8; ++b)
                bytes[8 * w + b] = static_cast<std::uint8_t>(
                    (repaired >> (8 * b)) & 0xff);
            // Re-encode so a corrected check-bit fault is repaired too.
            check[w] = eccEncodeWord(repaired);
            break;
          case EccStatus::Uncorrectable:
            ++outcome.uncorrectable;
            break;
        }
    }
    if (outcome.corrected)
        applyStuckBits(bank, row, col);
    return outcome;
}

} // namespace pimsim
