#include "dram/datastore.h"

#include <cstring>

#include "common/logging.h"
#include "dram/ecc.h"

namespace pimsim {

DataStore::DataStore(const HbmGeometry &geom) : geom_(geom) {}

Burst
DataStore::read(unsigned bank, unsigned row, unsigned col) const
{
    PIMSIM_ASSERT(bank < geom_.banksPerPch() && row < geom_.rowsPerBank &&
                      col < geom_.colsPerRow,
                  "read out of range: bank ", bank, " row ", row, " col ",
                  col);
    Burst burst{};
    auto it = rows_.find(key(bank, row));
    if (it == rows_.end())
        return burst;
    std::memcpy(burst.data(), it->second.data() + col * kBurstBytes,
                kBurstBytes);

    if (geom_.onDieEcc) {
        const auto eit = ecc_.find(key(bank, row));
        if (eit != ecc_.end()) {
            EccBytes check;
            std::memcpy(check.data(), eit->second.data() + col * 4, 4);
            switch (eccDecodeBurst(burst, check)) {
              case EccStatus::Ok:
                break;
              case EccStatus::Corrected:
                ++eccCorrected_;
                break;
              case EccStatus::Uncorrectable:
                ++eccUncorrectable_;
                PIMSIM_WARN("uncorrectable ECC error at bank ", bank,
                            " row ", row, " col ", col);
                break;
            }
        }
    }
    return burst;
}

void
DataStore::write(unsigned bank, unsigned row, unsigned col,
                 const Burst &data)
{
    PIMSIM_ASSERT(bank < geom_.banksPerPch() && row < geom_.rowsPerBank &&
                      col < geom_.colsPerRow,
                  "write out of range: bank ", bank, " row ", row, " col ",
                  col);
    auto &storage = rows_[key(bank, row)];
    if (storage.empty())
        storage.assign(geom_.bytesPerRow(), 0);
    std::memcpy(storage.data() + col * kBurstBytes, data.data(),
                kBurstBytes);

    if (geom_.onDieEcc) {
        auto &check_row = ecc_[key(bank, row)];
        if (check_row.empty()) {
            // Check bytes for an all-zero burst are non-zero only in the
            // parity sense; initialise every column's check correctly.
            check_row.assign(geom_.colsPerRow * 4, 0);
            const EccBytes zero_check = eccEncodeBurst(Burst{});
            for (unsigned c = 0; c < geom_.colsPerRow; ++c)
                std::memcpy(check_row.data() + c * 4, zero_check.data(),
                            4);
        }
        const EccBytes check = eccEncodeBurst(data);
        std::memcpy(check_row.data() + col * 4, check.data(), 4);
    }
}

std::size_t
DataStore::allocatedBytes() const
{
    return rows_.size() * geom_.bytesPerRow();
}

void
DataStore::injectBitFlip(unsigned bank, unsigned row, unsigned col,
                         unsigned bit)
{
    PIMSIM_ASSERT(bit < kBurstBytes * 8, "bit index out of range");
    auto &storage = rows_[key(bank, row)];
    if (storage.empty())
        storage.assign(geom_.bytesPerRow(), 0);
    storage[col * kBurstBytes + bit / 8] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
}

} // namespace pimsim
