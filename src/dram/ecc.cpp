#include "dram/ecc.h"

#include "common/bits.h"

namespace pimsim {

const char *
eccStatusName(EccStatus status)
{
    // No default case: -Wswitch flags any new enumerator added without
    // a name here; tests/ecc_test enforces a printable, distinct name
    // for every value.
    switch (status) {
      case EccStatus::Ok:
        return "Ok";
      case EccStatus::Corrected:
        return "Corrected";
      case EccStatus::Uncorrectable:
        return "Uncorrectable";
    }
    return "?";
}

namespace {

/**
 * Codeword layout for extended Hamming (72,64): positions 1..71 hold
 * the 7 check bits at power-of-two positions and the 64 data bits in
 * between; one overall parity bit extends SEC to SEC-DED.
 */
struct EccTables
{
    // position in codeword (1-based) of each data bit
    unsigned dataPos[64];
    // data bit index for each codeword position (or -1)
    int posData[73];

    EccTables()
    {
        unsigned data_bit = 0;
        for (unsigned pos = 1; pos <= 72 && data_bit < 64; ++pos) {
            posData[pos] = -1;
            if (isPowerOfTwo(pos))
                continue;
            dataPos[data_bit] = pos;
            posData[pos] = static_cast<int>(data_bit);
            ++data_bit;
        }
    }
};

const EccTables &
tables()
{
    static const EccTables t;
    return t;
}

/** 7-bit Hamming syndrome of the data bits in codeword space. */
std::uint8_t
dataSyndrome(std::uint64_t data)
{
    const EccTables &t = tables();
    unsigned syndrome = 0;
    for (unsigned bit = 0; bit < 64; ++bit) {
        if ((data >> bit) & 1)
            syndrome ^= t.dataPos[bit];
    }
    return static_cast<std::uint8_t>(syndrome & 0x7f);
}

unsigned
popcount64(std::uint64_t v)
{
    return static_cast<unsigned>(__builtin_popcountll(v));
}

} // namespace

std::uint8_t
eccEncodeWord(std::uint64_t data)
{
    // Check bits chosen so the codeword syndrome is zero; the 8th bit
    // is overall parity over data + check bits.
    const std::uint8_t check = dataSyndrome(data);
    const unsigned parity =
        (popcount64(data) + popcount64(check & 0x7f)) & 1;
    return static_cast<std::uint8_t>(check | (parity << 7));
}

EccStatus
eccDecodeWord(std::uint64_t &data, std::uint8_t check)
{
    const std::uint8_t stored_syndrome = check & 0x7f;
    const unsigned stored_parity = (check >> 7) & 1;

    const std::uint8_t syndrome =
        static_cast<std::uint8_t>(dataSyndrome(data) ^ stored_syndrome);
    const unsigned parity =
        (popcount64(data) + popcount64(stored_syndrome)) & 1;
    const bool parity_error = parity != stored_parity;

    if (syndrome == 0)
        return parity_error ? EccStatus::Corrected /* parity bit flip */
                            : EccStatus::Ok;

    if (!parity_error) {
        // Non-zero syndrome with even overall parity: two bits flipped.
        return EccStatus::Uncorrectable;
    }

    // Single-bit error: the syndrome names the codeword position.
    const EccTables &t = tables();
    if (syndrome <= 72 && t.posData[syndrome] >= 0) {
        data ^= std::uint64_t{1} << t.posData[syndrome];
        return EccStatus::Corrected;
    }
    // The flipped bit was one of the stored check bits; data is intact.
    if (isPowerOfTwo(syndrome))
        return EccStatus::Corrected;
    return EccStatus::Uncorrectable;
}

EccBytes
eccEncodeBurst(const Burst &data)
{
    EccBytes check{};
    for (unsigned w = 0; w < 4; ++w) {
        std::uint64_t word = 0;
        for (unsigned b = 0; b < 8; ++b)
            word |= std::uint64_t{data[8 * w + b]} << (8 * b);
        check[w] = eccEncodeWord(word);
    }
    return check;
}

EccStatus
eccDecodeBurst(Burst &data, const EccBytes &check)
{
    EccStatus worst = EccStatus::Ok;
    for (unsigned w = 0; w < 4; ++w) {
        std::uint64_t word = 0;
        for (unsigned b = 0; b < 8; ++b)
            word |= std::uint64_t{data[8 * w + b]} << (8 * b);
        const EccStatus status = eccDecodeWord(word, check[w]);
        for (unsigned b = 0; b < 8; ++b)
            data[8 * w + b] =
                static_cast<std::uint8_t>((word >> (8 * b)) & 0xff);
        if (static_cast<int>(status) > static_cast<int>(worst))
            worst = status;
    }
    return worst;
}

} // namespace pimsim
