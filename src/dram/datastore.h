/**
 * @file
 * Functional storage for DRAM contents.
 *
 * The simulator is functionally exact: every RD/WR moves real bytes and
 * every PIM instruction computes on real FP16 values, so end-to-end tests
 * can compare simulated memory against golden references bit-for-bit.
 * Rows are allocated lazily (zero-filled) so multi-gigabyte address
 * spaces cost only what a workload touches.
 */

#ifndef PIMSIM_DRAM_DATASTORE_H
#define PIMSIM_DRAM_DATASTORE_H

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "dram/geometry.h"

namespace pimsim {

/** One 32-byte burst of data. */
using Burst = std::array<std::uint8_t, kBurstBytes>;

enum class EccStatus; // dram/ecc.h

/** Outcome of scrubbing one burst (see DataStore::scrubBurst). */
struct ScrubOutcome
{
    std::uint64_t corrected = 0;     ///< words repaired in the array
    std::uint64_t uncorrectable = 0; ///< words with detected double faults
};

/**
 * Byte storage for all banks of one pseudo channel.
 *
 * With on-die ECC enabled (HbmGeometry::onDieEcc, Section VIII), every
 * write stores SEC-DED check bytes alongside the data and every read —
 * host or PIM bank-operand — corrects single-bit faults on the fly and
 * counts uncorrectable ones. Faults are injected with injectBitFlip()
 * (transient) and setStuckBit() (permanent cell defects); scrubBurst()
 * repairs correctable faults in the array itself so they cannot age
 * into double-bit errors.
 */
class DataStore
{
  public:
    /**
     * Observer for ECC events on reads (corrected and uncorrectable).
     * Arguments: bank, row, col, status.
     */
    using EccHook =
        std::function<void(unsigned, unsigned, unsigned, EccStatus)>;

    explicit DataStore(const HbmGeometry &geom);

    /**
     * Read one burst from (flat bank, row, col). Unwritten rows read 0.
     * With on-die ECC, single-bit faults are corrected in the returned
     * data (the stored copy keeps the fault until scrubbed) and the
     * worst per-word status is reported through `ecc` when non-null.
     */
    Burst read(unsigned bank, unsigned row, unsigned col,
               EccStatus *ecc = nullptr) const;

    /** Write one burst to (flat bank, row, col). */
    void write(unsigned bank, unsigned row, unsigned col, const Burst &data);

    /** Raw stored bytes, bypassing ECC decode (fault-inspection path). */
    Burst readRaw(unsigned bank, unsigned row, unsigned col) const;

    /** Bytes currently allocated (for tests / footprint stats). */
    std::size_t allocatedBytes() const;

    /** Allocated (bank, row) pairs in deterministic sorted order. */
    std::vector<std::pair<unsigned, unsigned>> allocatedRows() const;

    /** Flip one stored data bit without updating ECC (fault injection). */
    void injectBitFlip(unsigned bank, unsigned row, unsigned col,
                       unsigned bit);

    /**
     * Mark one cell as stuck at `value`: the stored bit is forced to the
     * value now and after every subsequent write (a permanent defect;
     * ECC check bytes always describe the intended data).
     */
    void setStuckBit(unsigned bank, unsigned row, unsigned col, unsigned bit,
                     bool value);

    /** Remove all stuck-at faults (end of a campaign). */
    void clearStuckBits();

    /** Number of registered stuck-at cells. */
    std::size_t stuckBitCount() const { return stuckCount_; }

    /**
     * Scrub one burst: decode the stored data against its check bytes
     * and write the corrected pattern (data and check) back into the
     * array. Uncorrectable words are left untouched. A no-op when ECC
     * is disabled or the row was never written.
     */
    ScrubOutcome scrubBurst(unsigned bank, unsigned row, unsigned col);

    /**
     * Observer called on every ECC-visible read fault (Corrected and
     * Uncorrectable). Scrub repairs do not fire the hook; they are
     * reported through ScrubOutcome instead.
     */
    void setEccHook(EccHook hook) { eccHook_ = std::move(hook); }

    /** Single-bit errors corrected by on-die ECC so far. */
    std::uint64_t eccCorrected() const { return eccCorrected_; }
    /** Double-bit errors detected (data returned as-is). */
    std::uint64_t eccUncorrectable() const { return eccUncorrectable_; }

  private:
    using RowKey = std::uint64_t;

    RowKey key(unsigned bank, unsigned row) const
    {
        return (static_cast<std::uint64_t>(bank) << 32) | row;
    }

    /** Force stuck cells of one row onto the stored bytes. */
    void applyStuckBits(unsigned bank, unsigned row, unsigned col);

    HbmGeometry geom_;
    std::unordered_map<RowKey, std::vector<std::uint8_t>> rows_;
    /** Per-row check bytes, 4 per burst (allocated with the row). */
    std::unordered_map<RowKey, std::vector<std::uint8_t>> ecc_;

    /** Stuck-at cells: (bank, row) -> list of (col, bit, value). */
    struct StuckBit
    {
        unsigned col;
        unsigned bit;
        bool value;
    };
    std::unordered_map<RowKey, std::vector<StuckBit>> stuck_;
    std::size_t stuckCount_ = 0;

    EccHook eccHook_;
    mutable std::uint64_t eccCorrected_ = 0;
    mutable std::uint64_t eccUncorrectable_ = 0;
};

} // namespace pimsim

#endif // PIMSIM_DRAM_DATASTORE_H
