/**
 * @file
 * Functional storage for DRAM contents.
 *
 * The simulator is functionally exact: every RD/WR moves real bytes and
 * every PIM instruction computes on real FP16 values, so end-to-end tests
 * can compare simulated memory against golden references bit-for-bit.
 * Rows are allocated lazily (zero-filled) so multi-gigabyte address
 * spaces cost only what a workload touches.
 */

#ifndef PIMSIM_DRAM_DATASTORE_H
#define PIMSIM_DRAM_DATASTORE_H

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "dram/geometry.h"

namespace pimsim {

/** One 32-byte burst of data. */
using Burst = std::array<std::uint8_t, kBurstBytes>;

/**
 * Byte storage for all banks of one pseudo channel.
 *
 * With on-die ECC enabled (HbmGeometry::onDieEcc, Section VIII), every
 * write stores SEC-DED check bytes alongside the data and every read —
 * host or PIM bank-operand — corrects single-bit faults on the fly and
 * counts uncorrectable ones. Faults are injected with injectBitFlip().
 */
class DataStore
{
  public:
    explicit DataStore(const HbmGeometry &geom);

    /** Read one burst from (flat bank, row, col). Unwritten rows read 0. */
    Burst read(unsigned bank, unsigned row, unsigned col) const;

    /** Write one burst to (flat bank, row, col). */
    void write(unsigned bank, unsigned row, unsigned col, const Burst &data);

    /** Bytes currently allocated (for tests / footprint stats). */
    std::size_t allocatedBytes() const;

    /** Flip one stored data bit without updating ECC (fault injection). */
    void injectBitFlip(unsigned bank, unsigned row, unsigned col,
                       unsigned bit);

    /** Single-bit errors corrected by on-die ECC so far. */
    std::uint64_t eccCorrected() const { return eccCorrected_; }
    /** Double-bit errors detected (data returned as-is). */
    std::uint64_t eccUncorrectable() const { return eccUncorrectable_; }

  private:
    using RowKey = std::uint64_t;

    RowKey key(unsigned bank, unsigned row) const
    {
        return (static_cast<std::uint64_t>(bank) << 32) | row;
    }

    HbmGeometry geom_;
    std::unordered_map<RowKey, std::vector<std::uint8_t>> rows_;
    /** Per-row check bytes, 4 per burst (allocated with the row). */
    std::unordered_map<RowKey, std::vector<std::uint8_t>> ecc_;
    mutable std::uint64_t eccCorrected_ = 0;
    mutable std::uint64_t eccUncorrectable_ = 0;
};

} // namespace pimsim

#endif // PIMSIM_DRAM_DATASTORE_H
