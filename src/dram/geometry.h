/**
 * @file
 * Physical organisation of an HBM2 stack (Section II-B, Fig. 2).
 *
 * A stack exposes 16 pseudo channels (pCHs). Each pCH has 4 bank groups
 * of 4 banks (16 banks). A column command moves one 256-bit burst
 * (32 bytes). PIM execution units sit at the bank I/O boundary, one unit
 * per even/odd bank pair (8 units per pCH, Table V).
 */

#ifndef PIMSIM_DRAM_GEOMETRY_H
#define PIMSIM_DRAM_GEOMETRY_H

#include <cstdint>

#include "common/types.h"

namespace pimsim {

/** Static geometry of one HBM stack; all counts are powers of two. */
struct HbmGeometry
{
    /** Pseudo channels per stack. */
    unsigned pchPerStack = 16;
    /** Bank groups per pseudo channel. */
    unsigned bankGroupsPerPch = 4;
    /** Banks per bank group. */
    unsigned banksPerBankGroup = 4;
    /** Rows per bank. */
    unsigned rowsPerBank = 16384;
    /** Column commands per row (row buffer = columns * 32 B = 1 KiB). */
    unsigned colsPerRow = 32;
    /** On-die SEC-DED ECC per burst (Section VIII; HBM3 generation). */
    bool onDieEcc = false;

    unsigned banksPerPch() const
    {
        return bankGroupsPerPch * banksPerBankGroup;
    }

    std::uint64_t bytesPerRow() const
    {
        return std::uint64_t{colsPerRow} * kBurstBytes;
    }

    std::uint64_t bytesPerBank() const
    {
        return bytesPerRow() * rowsPerBank;
    }

    std::uint64_t bytesPerPch() const
    {
        return bytesPerBank() * banksPerPch();
    }

    std::uint64_t bytesPerStack() const
    {
        return bytesPerPch() * pchPerStack;
    }
};

} // namespace pimsim

#endif // PIMSIM_DRAM_GEOMETRY_H
