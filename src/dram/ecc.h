/**
 * @file
 * On-die ECC (Section VIII: "DRAM began to have on-die ECC including
 * HBM3. Thus, PIM may leverage the on-die ECC engine to generate and
 * check the ECC parity bits even in PIM mode.").
 *
 * A SEC-DED (72,64) extended-Hamming code per 64-bit word: each 32-byte
 * burst carries four 8-bit check fields. Single-bit errors are corrected
 * transparently on any read — host reads and PIM bank-operand fetches
 * alike — and double-bit errors are detected and counted. Fault
 * injection lets tests exercise both paths.
 */

#ifndef PIMSIM_DRAM_ECC_H
#define PIMSIM_DRAM_ECC_H

#include <array>
#include <cstdint>

#include "dram/datastore.h"

namespace pimsim {

/** Check bytes for one 32-byte burst (one per 64-bit word). */
using EccBytes = std::array<std::uint8_t, 4>;

/** Result of checking one word or burst. */
enum class EccStatus
{
    Ok,            ///< no error
    Corrected,     ///< single-bit error corrected
    Uncorrectable, ///< double-bit error detected
};

/** Printable name of an EccStatus (never nullptr for valid values). */
const char *eccStatusName(EccStatus status);

/** Compute the (72,64) check byte for one 64-bit word. */
std::uint8_t eccEncodeWord(std::uint64_t data);

/**
 * Check and correct one 64-bit word in place.
 * @return Ok, Corrected (data fixed), or Uncorrectable.
 */
EccStatus eccDecodeWord(std::uint64_t &data, std::uint8_t check);

/** Compute check bytes for a whole burst. */
EccBytes eccEncodeBurst(const Burst &data);

/**
 * Check and correct a burst in place.
 * @return the worst status across the four words.
 */
EccStatus eccDecodeBurst(Burst &data, const EccBytes &check);

} // namespace pimsim

#endif // PIMSIM_DRAM_ECC_H
