/**
 * @file
 * HBM2 timing parameters (JEDEC JESD235-style), in memory-bus clock ticks.
 *
 * The paper's PIM-HBM keeps DRAM timing parameters "same as HBM2"
 * (Table V); the bus runs at 1.0-1.2 GHz while the DRAM core and PIM unit
 * run at bus/4 (250-300 MHz). tCCD_L = 4 tCK is therefore exactly one
 * PIM-unit cycle, which is what makes the lock-step "one column command =
 * one PIM instruction" execution model work (Section III-B).
 */

#ifndef PIMSIM_DRAM_TIMING_H
#define PIMSIM_DRAM_TIMING_H

#include "common/types.h"

namespace pimsim {

/** All values in bus clock cycles (tCK) unless noted. */
struct HbmTiming
{
    /** Bus clock period in nanoseconds (1.0 GHz default; 1.2 GHz option). */
    double tCKns = 1.0;

    // Row commands.
    unsigned tRCDRD = 14; ///< ACT to RD
    unsigned tRCDWR = 10; ///< ACT to WR
    unsigned tRP = 14;    ///< PRE to ACT
    unsigned tRAS = 33;   ///< ACT to PRE
    unsigned tRC = 47;    ///< ACT to ACT, same bank
    unsigned tRRDS = 4;   ///< ACT to ACT, different bank group
    unsigned tRRDL = 6;   ///< ACT to ACT, same bank group
    unsigned tFAW = 30;   ///< four-activate window

    // Column commands.
    unsigned tCL = 14;   ///< RD to data
    unsigned tCWL = 7;   ///< WR to data
    unsigned tBL = 2;    ///< bus cycles per burst (4 DDR beats = 2 tCK)
    unsigned tCCDS = 2;  ///< column to column, different bank group
    unsigned tCCDL = 4;  ///< column to column, same bank group
    unsigned tRTP = 5;   ///< RD to PRE
    unsigned tWR = 16;   ///< end of write data to PRE
    unsigned tWTRS = 8;  ///< write-to-read turnaround, different bank group
    unsigned tWTRL = 9;  ///< write-to-read turnaround, same bank group
    unsigned tRTW = 18;  ///< read-to-write turnaround (tCL + tBL - tCWL + 1)

    // Refresh.
    unsigned tRFC = 350;    ///< refresh cycle time
    unsigned tREFI = 3900;  ///< average refresh interval

    /** Bus frequency in GHz. */
    double busGHz() const { return 1.0 / tCKns; }

    /** DRAM-core / PIM-unit frequency in GHz (bus / 4). */
    double coreGHz() const { return busGHz() / 4.0; }

    /** Peak off-chip bandwidth of one pCH in GB/s: 64 bits DDR-equivalent.
     *  An HBM2 pCH moves 32 B per tCCD_S (2 tCK): 16 GB/s at 1 GHz. */
    double pchIoBandwidthGBs() const
    {
        return static_cast<double>(kBurstBytes) / (tCCDS * tCKns);
    }

    /** Per-bank on-chip bandwidth in AB mode (one burst per tCCD_L). */
    double bankAbBandwidthGBs() const
    {
        return static_cast<double>(kBurstBytes) / (tCCDL * tCKns);
    }

    /** HBM2 at 1.2 GHz bus (2.4 Gbps pins), the paper's shipping config. */
    static HbmTiming at12GHz()
    {
        HbmTiming t;
        t.tCKns = 1.0 / 1.2;
        return t;
    }
};

} // namespace pimsim

#endif // PIMSIM_DRAM_TIMING_H
