#include "dram/address.h"

#include <ostream>

#include "common/bits.h"
#include "common/logging.h"

namespace pimsim {

std::ostream &
operator<<(std::ostream &os, const DramCoord &coord)
{
    return os << "ch" << coord.channel << " bg" << coord.bankGroup << " ba"
              << coord.bank << " row" << coord.row << " col" << coord.col;
}

AddressMapping::AddressMapping(const HbmGeometry &geom, unsigned num_channels,
                               MappingScheme scheme)
    : geom_(geom), numChannels_(num_channels), scheme_(scheme)
{
    PIMSIM_ASSERT(isPowerOfTwo(num_channels), "channels must be 2^n");
    PIMSIM_ASSERT(isPowerOfTwo(geom.bankGroupsPerPch) &&
                      isPowerOfTwo(geom.banksPerBankGroup) &&
                      isPowerOfTwo(geom.rowsPerBank) &&
                      isPowerOfTwo(geom.colsPerRow),
                  "geometry fields must be powers of two");

    const unsigned ch_bits = exactLog2(num_channels);
    const unsigned bg_bits = exactLog2(geom.bankGroupsPerPch);
    const unsigned ba_bits = exactLog2(geom.banksPerBankGroup);
    const unsigned row_bits = exactLog2(geom.rowsPerBank);
    const unsigned col_bits = exactLog2(geom.colsPerRow);

    switch (scheme) {
      case MappingScheme::ChBgColBaRo:
        fields_ = {{Field::Channel, ch_bits},
                   {Field::BankGroup, bg_bits},
                   {Field::Col, col_bits},
                   {Field::Bank, ba_bits},
                   {Field::Row, row_bits}};
        break;
      case MappingScheme::ChColBgBaRo:
        fields_ = {{Field::Channel, ch_bits},
                   {Field::Col, col_bits},
                   {Field::BankGroup, bg_bits},
                   {Field::Bank, ba_bits},
                   {Field::Row, row_bits}};
        break;
      case MappingScheme::RoColBgBaCh:
        fields_ = {{Field::Row, row_bits},
                   {Field::Col, col_bits},
                   {Field::BankGroup, bg_bits},
                   {Field::Bank, ba_bits},
                   {Field::Channel, ch_bits}};
        break;
    }

    capacity_ = geom_.bytesPerPch() * num_channels;
}

DramCoord
AddressMapping::decode(Addr addr) const
{
    PIMSIM_ASSERT(addr < capacity_, "address ", addr, " beyond capacity ",
                  capacity_);
    DramCoord coord;
    unsigned lo = exactLog2(kBurstBytes);
    for (const auto &spec : fields_) {
        const auto value =
            static_cast<unsigned>(extractBits(addr, lo, spec.width));
        switch (spec.field) {
          case Field::Channel:
            coord.channel = value;
            break;
          case Field::BankGroup:
            coord.bankGroup = value;
            break;
          case Field::Bank:
            coord.bank = value;
            break;
          case Field::Row:
            coord.row = value;
            break;
          case Field::Col:
            coord.col = value;
            break;
        }
        lo += spec.width;
    }
    return coord;
}

Addr
AddressMapping::encode(const DramCoord &coord) const
{
    Addr addr = 0;
    unsigned lo = exactLog2(kBurstBytes);
    for (const auto &spec : fields_) {
        unsigned value = 0;
        switch (spec.field) {
          case Field::Channel:
            value = coord.channel;
            break;
          case Field::BankGroup:
            value = coord.bankGroup;
            break;
          case Field::Bank:
            value = coord.bank;
            break;
          case Field::Row:
            value = coord.row;
            break;
          case Field::Col:
            value = coord.col;
            break;
        }
        PIMSIM_ASSERT(value < (1u << spec.width), "coordinate field out of "
                      "range: ", value, " width ", spec.width);
        addr = insertBits(addr, lo, spec.width, value);
        lo += spec.width;
    }
    return addr;
}

} // namespace pimsim
