#include "dram/pseudo_channel.h"

#include <algorithm>
#include <ostream>

#include "common/logging.h"
#include "common/trace.h"

namespace pimsim {

PseudoChannel::PseudoChannel(const HbmGeometry &geom, const HbmTiming &timing,
                             std::string stat_name)
    : geom_(geom), timing_(timing), banks_(geom.banksPerPch()), data_(geom),
      nextRdPerBg_(geom.bankGroupsPerPch, 0),
      nextWrPerBg_(geom.bankGroupsPerPch, 0),
      nextActPerBg_(geom.bankGroupsPerPch, 0), stats_(std::move(stat_name))
{
}

std::vector<unsigned>
PseudoChannel::targetBanks(const Command &cmd) const
{
    std::vector<unsigned> targets;
    if (allBank_ || cmd.type == CommandType::PreA ||
        cmd.type == CommandType::Ref) {
        targets.resize(banks_.size());
        for (unsigned i = 0; i < banks_.size(); ++i)
            targets[i] = i;
    } else {
        targets.push_back(cmd.flatBank(geom_.banksPerBankGroup));
    }
    return targets;
}

Cycle
PseudoChannel::earliestAct(unsigned flat_bank, Cycle now) const
{
    const Bank &b = banks_[flat_bank];
    const unsigned bg = flat_bank / geom_.banksPerBankGroup;
    Cycle t = std::max(now, b.nextAct);
    if (!allBank_) {
        // tRRD / tFAW only constrain independent per-bank activates; an
        // AB-mode ACT is a single command opening all banks in lock-step.
        t = std::max(t, nextActGlobal_);
        t = std::max(t, nextActPerBg_[bg]);
        if (actWindow_.size() >= 4)
            t = std::max(t, actWindow_[actWindow_.size() - 4] + timing_.tFAW);
    }
    return t;
}

Cycle
PseudoChannel::earliestPre(unsigned flat_bank, Cycle now) const
{
    return std::max(now, banks_[flat_bank].nextPre);
}

Cycle
PseudoChannel::earliestCol(const Command &cmd, unsigned flat_bank,
                           Cycle now) const
{
    const Bank &b = banks_[flat_bank];
    const unsigned bg = flat_bank / geom_.banksPerBankGroup;
    Cycle t = now;
    if (cmd.type == CommandType::Rd) {
        t = std::max(t, b.nextRd);
        t = std::max(t, nextRdPerBg_[bg]);
        if (!allBank_)
            t = std::max(t, nextRdGlobal_);
        // Data-bus occupancy: RD data appears tCL after issue.
        if (busBusyUntil_ > timing_.tCL)
            t = std::max(t, busBusyUntil_ - timing_.tCL);
    } else {
        t = std::max(t, b.nextWr);
        t = std::max(t, nextWrPerBg_[bg]);
        if (!allBank_)
            t = std::max(t, nextWrGlobal_);
        if (busBusyUntil_ > timing_.tCWL)
            t = std::max(t, busBusyUntil_ - timing_.tCWL);
    }
    return t;
}

Cycle
PseudoChannel::earliestIssue(const Command &cmd, Cycle now) const
{
    Cycle t = now;
    const auto targets = targetBanks(cmd);
    switch (cmd.type) {
      case CommandType::Act:
        for (unsigned b : targets) {
            PIMSIM_ASSERT(banks_[b].state == BankState::Idle,
                          "ACT on active bank ", b);
            t = std::max(t, earliestAct(b, now));
        }
        break;
      case CommandType::Pre:
      case CommandType::PreA:
        for (unsigned b : targets) {
            if (banks_[b].state == BankState::Active)
                t = std::max(t, earliestPre(b, now));
        }
        break;
      case CommandType::Rd:
      case CommandType::Wr:
        for (unsigned b : targets) {
            PIMSIM_ASSERT(banks_[b].state == BankState::Active,
                          "column command on idle bank ", b);
            t = std::max(t, earliestCol(cmd, b, now));
        }
        break;
      case CommandType::Ref:
        PIMSIM_ASSERT(allBanksIdle(), "REF with open rows");
        for (const auto &b : banks_)
            t = std::max(t, b.nextAct);
        break;
    }
    return t;
}

void
PseudoChannel::applyAct(unsigned flat_bank, unsigned row, Cycle now)
{
    Bank &b = banks_[flat_bank];
    const unsigned bg = flat_bank / geom_.banksPerBankGroup;
    b.state = BankState::Active;
    b.openRow = row;
    b.nextRd = now + timing_.tRCDRD;
    b.nextWr = now + timing_.tRCDWR;
    b.nextPre = now + timing_.tRAS;
    b.nextAct = now + timing_.tRC;
    if (!allBank_) {
        nextActGlobal_ = std::max(nextActGlobal_, now + timing_.tRRDS);
        nextActPerBg_[bg] = std::max(nextActPerBg_[bg], now + timing_.tRRDL);
    }
}

void
PseudoChannel::applyPre(unsigned flat_bank, Cycle now)
{
    Bank &b = banks_[flat_bank];
    b.state = BankState::Idle;
    b.nextAct = std::max(b.nextAct, now + timing_.tRP);
}

void
PseudoChannel::applyCol(const Command &cmd, unsigned flat_bank, Cycle now)
{
    Bank &b = banks_[flat_bank];
    const unsigned bg = flat_bank / geom_.banksPerBankGroup;
    if (cmd.type == CommandType::Rd) {
        nextRdPerBg_[bg] = now + timing_.tCCDL;
        if (!allBank_)
            nextRdGlobal_ = now + timing_.tCCDS;
        b.nextPre = std::max(b.nextPre, now + timing_.tRTP);
    } else {
        nextWrPerBg_[bg] = now + timing_.tCCDL;
        if (!allBank_)
            nextWrGlobal_ = now + timing_.tCCDS;
        const Cycle data_end = now + timing_.tCWL + timing_.tBL;
        b.nextPre = std::max(b.nextPre, data_end + timing_.tWR);
        // Write-to-read turnaround.
        b.nextRd = std::max(b.nextRd, data_end + timing_.tWTRL);
        nextRdPerBg_[bg] = std::max(nextRdPerBg_[bg],
                                    data_end + timing_.tWTRL);
        nextRdGlobal_ = std::max(nextRdGlobal_, data_end + timing_.tWTRS);
    }
}

bool
PseudoChannel::allBanksIdle() const
{
    return std::all_of(banks_.begin(), banks_.end(), [](const Bank &b) {
        return b.state == BankState::Idle;
    });
}

IssueResult
PseudoChannel::issue(const Command &cmd, Cycle now)
{
    PIMSIM_ASSERT(canIssue(cmd, now), "illegal issue of ",
                  commandTypeName(cmd.type), " at cycle ", now);
    if (trace_) {
        *trace_ << now << ": " << cmd << " [" << modeLabel() << "]"
                << "\n";
    }
    if (traceSession_) {
        // Span length: how long the command keeps its resource occupied
        // (row turnaround for ACT/PRE, data phase for columns, tRFC for
        // refresh) so the viewer shows real channel occupancy.
        Cycle dur = 1;
        switch (cmd.type) {
          case CommandType::Act:
            dur = timing_.tRCDRD;
            break;
          case CommandType::Pre:
          case CommandType::PreA:
            dur = timing_.tRP;
            break;
          case CommandType::Rd:
            dur = timing_.tCL + timing_.tBL;
            break;
          case CommandType::Wr:
            dur = timing_.tCWL + timing_.tBL;
            break;
          case CommandType::Ref:
            dur = timing_.tRFC;
            break;
        }
        traceSession_->span(
            kTracePidDevice, traceTid_, commandTypeName(cmd.type),
            modeLabel(), static_cast<double>(now) * timing_.tCKns,
            static_cast<double>(dur) * timing_.tCKns);
    }
    IssueResult result;
    const auto targets = targetBanks(cmd);

    switch (cmd.type) {
      case CommandType::Act:
        for (unsigned b : targets)
            applyAct(b, cmd.row, now);
        if (!allBank_ && targets.size() == 1) {
            actWindow_.push_back(now);
            if (actWindow_.size() > 8)
                actWindow_.pop_front();
        }
        stats_.add("act", targets.size());
        if (interceptor_)
            interceptor_->onRowCommand(cmd, now);
        break;

      case CommandType::Pre:
      case CommandType::PreA:
        for (unsigned b : targets) {
            if (banks_[b].state == BankState::Active) {
                applyPre(b, now);
                stats_.add("pre");
            }
        }
        if (interceptor_)
            interceptor_->onRowCommand(cmd, now);
        break;

      case CommandType::Rd:
      case CommandType::Wr: {
        for (unsigned b : targets)
            applyCol(cmd, b, now);

        bool intercepted = false;
        Burst rd_data{};
        if (interceptor_)
            intercepted = interceptor_->onColumnCommand(cmd, now, &rd_data);

        if (cmd.type == CommandType::Rd) {
            result.dataCycle = now + timing_.tCL + timing_.tBL;
            if (intercepted) {
                result.data = rd_data;
                stats_.add("pimCol");
                stats_.add("pimBusCycles", timing_.tBL);
            } else {
                // Data leaves the die: bus is occupied.
                busBusyUntil_ = now + timing_.tCL + timing_.tBL;
                lastRdDataEnd_ = busBusyUntil_;
                stats_.add("busCycles", timing_.tBL);
                const unsigned src =
                    cmd.flatBank(geom_.banksPerBankGroup);
                result.data = data_.read(src, banks_[src].openRow, cmd.col,
                                         &result.ecc);
                stats_.add("rd");
                stats_.add("rdBanks", targets.size());
            }
        } else {
            if (intercepted) {
                result.dataCycle = now + timing_.tCWL + timing_.tBL;
                stats_.add("pimCol");
                stats_.add("pimBusCycles", timing_.tBL);
            } else {
                busBusyUntil_ = now + timing_.tCWL + timing_.tBL;
                stats_.add("busCycles", timing_.tBL);
                for (unsigned b : targets)
                    data_.write(b, banks_[b].openRow, cmd.col, cmd.data);
                result.dataCycle = now + timing_.tCWL + timing_.tBL;
                stats_.add("wr");
                stats_.add("wrBanks", targets.size());
            }
        }
        result.intercepted = intercepted;
        break;
      }

      case CommandType::Ref:
        for (auto &b : banks_)
            b.nextAct = std::max(b.nextAct, now + timing_.tRFC);
        stats_.add("ref");
        break;
    }
    return result;
}

} // namespace pimsim
