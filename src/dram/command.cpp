#include "dram/command.h"

#include <ostream>

namespace pimsim {

const char *
commandTypeName(CommandType type)
{
    switch (type) {
      case CommandType::Act:
        return "ACT";
      case CommandType::Pre:
        return "PRE";
      case CommandType::PreA:
        return "PREA";
      case CommandType::Rd:
        return "RD";
      case CommandType::Wr:
        return "WR";
      case CommandType::Ref:
        return "REF";
    }
    return "???";
}

std::ostream &
operator<<(std::ostream &os, const Command &cmd)
{
    os << commandTypeName(cmd.type) << " bg" << cmd.bankGroup << " ba"
       << cmd.bank;
    if (cmd.type == CommandType::Act)
        os << " row" << cmd.row;
    if (cmd.type == CommandType::Rd || cmd.type == CommandType::Wr)
        os << " col" << cmd.col;
    return os;
}

} // namespace pimsim
