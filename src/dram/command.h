/**
 * @file
 * Standard DRAM commands.
 *
 * A central claim of the paper (Section III) is that PIM is driven purely
 * by these standard commands: there are no PIM-specific command encodings.
 * Mode transitions are ACT/PRE sequences to reserved addresses and a
 * column RD/WR in AB-PIM mode triggers one PIM instruction.
 */

#ifndef PIMSIM_DRAM_COMMAND_H
#define PIMSIM_DRAM_COMMAND_H

#include <array>
#include <cstdint>
#include <iosfwd>

#include "common/types.h"

namespace pimsim {

/** JEDEC command types understood by the device. */
enum class CommandType : std::uint8_t
{
    Act,  ///< activate (open) a row
    Pre,  ///< precharge (close) a bank's row
    PreA, ///< precharge all banks
    Rd,   ///< column read (one 32 B burst)
    Wr,   ///< column write (one 32 B burst)
    Ref,  ///< all-bank refresh
};

const char *commandTypeName(CommandType type);

/** One DRAM command on a pseudo channel's command bus. */
struct Command
{
    CommandType type = CommandType::Rd;
    unsigned bankGroup = 0;
    unsigned bank = 0; ///< bank within the bank group
    unsigned row = 0;
    unsigned col = 0;
    /** Payload for WR commands (one burst). */
    std::array<std::uint8_t, kBurstBytes> data{};

    /** Flat bank index within the pCH. */
    unsigned flatBank(unsigned banks_per_group) const
    {
        return bankGroup * banks_per_group + bank;
    }

    static Command act(unsigned bg, unsigned ba, unsigned row)
    {
        Command c;
        c.type = CommandType::Act;
        c.bankGroup = bg;
        c.bank = ba;
        c.row = row;
        return c;
    }

    static Command pre(unsigned bg, unsigned ba)
    {
        Command c;
        c.type = CommandType::Pre;
        c.bankGroup = bg;
        c.bank = ba;
        return c;
    }

    static Command preAll()
    {
        Command c;
        c.type = CommandType::PreA;
        return c;
    }

    static Command rd(unsigned bg, unsigned ba, unsigned col)
    {
        Command c;
        c.type = CommandType::Rd;
        c.bankGroup = bg;
        c.bank = ba;
        c.col = col;
        return c;
    }

    static Command
    wr(unsigned bg, unsigned ba, unsigned col,
       const std::array<std::uint8_t, kBurstBytes> &data)
    {
        Command c;
        c.type = CommandType::Wr;
        c.bankGroup = bg;
        c.bank = ba;
        c.col = col;
        c.data = data;
        return c;
    }

    static Command refresh()
    {
        Command c;
        c.type = CommandType::Ref;
        return c;
    }
};

std::ostream &operator<<(std::ostream &os, const Command &cmd);

} // namespace pimsim

#endif // PIMSIM_DRAM_COMMAND_H
