/**
 * @file
 * Per-bank DRAM state machine and timing bookkeeping.
 */

#ifndef PIMSIM_DRAM_BANK_H
#define PIMSIM_DRAM_BANK_H

#include "common/types.h"

namespace pimsim {

/** Row-buffer state of one bank. */
enum class BankState
{
    Idle,   ///< precharged, no open row
    Active, ///< a row is open in the row buffer
};

/**
 * Timing state of one bank.
 *
 * Each nextX member is the earliest cycle at which command X may be
 * issued to this bank (Ramulator-style forward timestamps).
 */
struct Bank
{
    BankState state = BankState::Idle;
    unsigned openRow = 0;

    Cycle nextAct = 0;
    Cycle nextPre = 0;
    Cycle nextRd = 0;
    Cycle nextWr = 0;

    /** Earliest cycle this bank could accept a fresh ACT when idle. */
    bool rowOpen(unsigned row) const
    {
        return state == BankState::Active && openRow == row;
    }
};

} // namespace pimsim

#endif // PIMSIM_DRAM_BANK_H
