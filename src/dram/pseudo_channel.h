/**
 * @file
 * Cycle-level model of one HBM2 pseudo channel.
 *
 * Owns 16 banks (4 bank groups x 4), enforces JEDEC timing between
 * commands, and moves real bytes through the DataStore. Supports the
 * paper's two access shapes:
 *
 *  - single-bank (SB) mode: standard DRAM; a command targets one bank.
 *  - all-bank (AB) mode: one command is applied to the same row/column of
 *    all banks in lock-step (Section III-B); column commands are paced at
 *    tCCD_L.
 *
 * A ColumnInterceptor hook lets the PIM layer observe/consume commands
 * (PIM-register access, AB-PIM instruction triggering) without the DRAM
 * layer depending on the PIM layer.
 */

#ifndef PIMSIM_DRAM_PSEUDO_CHANNEL_H
#define PIMSIM_DRAM_PSEUDO_CHANNEL_H

#include <deque>
#include <iosfwd>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "dram/bank.h"
#include "dram/command.h"
#include "dram/datastore.h"
#include "dram/ecc.h"
#include "dram/geometry.h"
#include "dram/timing.h"

namespace pimsim {

class TraceSession;

/** Result of issuing a command. */
struct IssueResult
{
    /** Cycle at which RD data is valid on the bus (kNoCycle otherwise). */
    Cycle dataCycle = kNoCycle;
    /** RD payload (valid iff dataCycle != kNoCycle and not intercepted). */
    Burst data{};
    /** True if a PIM interceptor consumed the command's data phase. */
    bool intercepted = false;
    /** On-die ECC outcome of a host RD's array access (Ok otherwise). */
    EccStatus ecc = EccStatus::Ok;
};

/**
 * Interface for the PIM layer to observe commands on a pseudo channel.
 */
class ColumnInterceptor
{
  public:
    virtual ~ColumnInterceptor() = default;

    /**
     * Called when a row command (ACT/PRE/PREA) issues.
     * Used by the mode controller to detect PIM_CONF sequences.
     */
    virtual void onRowCommand(const Command &cmd, Cycle cycle) = 0;

    /**
     * Called when a column command (RD/WR) issues, before any bank data
     * movement.
     *
     * @param rd_data  for RD: set to the returned burst if consumed.
     * @return true if the interceptor consumed the command (PIM-register
     *         access or AB-PIM instruction trigger); the channel then
     *         skips its own bank data movement.
     */
    virtual bool onColumnCommand(const Command &cmd, Cycle cycle,
                                 Burst *rd_data) = 0;
};

/** Cycle-accurate pseudo channel with functional data. */
class PseudoChannel
{
  public:
    PseudoChannel(const HbmGeometry &geom, const HbmTiming &timing,
                  std::string stat_name = "pch");

    /** Earliest cycle >= now at which cmd could legally issue. */
    Cycle earliestIssue(const Command &cmd, Cycle now) const;

    /** True iff cmd may issue exactly at cycle `now`. */
    bool canIssue(const Command &cmd, Cycle now) const
    {
        return earliestIssue(cmd, now) == now;
    }

    /**
     * Issue a command at `now` (must be legal) and apply timing plus
     * functional effects.
     */
    IssueResult issue(const Command &cmd, Cycle now);

    /** Enter/leave all-bank lock-step operation. */
    void setAllBankMode(bool enabled) { allBank_ = enabled; }
    bool allBankMode() const { return allBank_; }

    /**
     * PIM-execution flag for trace annotation: the PIM layer raises it
     * while PIM_OP_MODE=1 so the command trace can distinguish an AB-PIM
     * trigger from a plain AB access (the DRAM layer itself behaves
     * identically either way).
     */
    void setPimModeActive(bool active) { pimModeActive_ = active; }
    bool pimModeActive() const { return pimModeActive_; }

    /** Current access-shape label: "SB", "AB" or "AB-PIM". */
    const char *modeLabel() const
    {
        return allBank_ ? (pimModeActive_ ? "AB-PIM" : "AB") : "SB";
    }

    /** Install the PIM-layer observer (may be nullptr). */
    void setInterceptor(ColumnInterceptor *interceptor)
    {
        interceptor_ = interceptor;
    }

    /** True iff every bank is precharged (required before REF / mode exit). */
    bool allBanksIdle() const;

    /** True iff any bank has an open row. */
    bool anyBankActive() const { return !allBanksIdle(); }

    const Bank &bank(unsigned flat_index) const { return banks_[flat_index]; }

    /** Direct functional access for fast-path loading and verification. */
    DataStore &dataStore() { return data_; }
    const DataStore &dataStore() const { return data_; }

    const HbmGeometry &geometry() const { return geom_; }
    const HbmTiming &timing() const { return timing_; }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    /**
     * Stream a gem5-style command trace ("<cycle>: <CMD> ...") to `os`;
     * nullptr disables tracing (the default).
     */
    void setTrace(std::ostream *os) { trace_ = os; }

    /**
     * Record issued commands as timeline spans on the given track of a
     * Chrome-trace session; nullptr disables (the default).
     */
    void setTraceSession(TraceSession *session, int track_tid)
    {
        traceSession_ = session;
        traceTid_ = track_tid;
    }

  private:
    Cycle earliestAct(unsigned flat_bank, Cycle now) const;
    Cycle earliestPre(unsigned flat_bank, Cycle now) const;
    Cycle earliestCol(const Command &cmd, unsigned flat_bank,
                      Cycle now) const;

    void applyAct(unsigned flat_bank, unsigned row, Cycle now);
    void applyPre(unsigned flat_bank, Cycle now);
    void applyCol(const Command &cmd, unsigned flat_bank, Cycle now);

    /** Banks a command applies to (1 in SB mode, all in AB mode). */
    std::vector<unsigned> targetBanks(const Command &cmd) const;

    HbmGeometry geom_;
    HbmTiming timing_;
    std::vector<Bank> banks_;
    DataStore data_;

    bool allBank_ = false;
    bool pimModeActive_ = false;
    ColumnInterceptor *interceptor_ = nullptr;
    std::ostream *trace_ = nullptr;
    TraceSession *traceSession_ = nullptr;
    int traceTid_ = 0;

    // Channel-global timing state.
    Cycle busBusyUntil_ = 0;               ///< data-bus occupancy
    Cycle nextRdGlobal_ = 0;               ///< tCCD_S across bank groups
    Cycle nextWrGlobal_ = 0;
    std::vector<Cycle> nextRdPerBg_;       ///< tCCD_L within a bank group
    std::vector<Cycle> nextWrPerBg_;
    std::vector<Cycle> nextActPerBg_;      ///< tRRD_L within a bank group
    Cycle nextActGlobal_ = 0;              ///< tRRD_S
    std::deque<Cycle> actWindow_;          ///< tFAW sliding window
    Cycle lastWrDataEnd_ = 0;              ///< for tWTR
    Cycle lastRdDataEnd_ = 0;              ///< for tRTW accounting

    StatGroup stats_;
};

} // namespace pimsim

#endif // PIMSIM_DRAM_PSEUDO_CHANNEL_H
