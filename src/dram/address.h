/**
 * @file
 * Physical-address <-> DRAM-coordinate mapping.
 *
 * Section VIII ("Memory Interleaving and Data Layout") explains that the
 * PIM architecture is largely agnostic to the host's physical address
 * mapping because the host controls each channel independently and PIM
 * accesses memory at the host's granularity. The software stack still has
 * to *know* the mapping to place operands bank-aligned (Fig. 15), so the
 * mapping is a first-class, invertible object here.
 */

#ifndef PIMSIM_DRAM_ADDRESS_H
#define PIMSIM_DRAM_ADDRESS_H

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.h"
#include "dram/geometry.h"

namespace pimsim {

/** Full coordinates of one 32-byte burst in the memory system. */
struct DramCoord
{
    unsigned channel = 0; ///< global pseudo-channel index across stacks
    unsigned bankGroup = 0;
    unsigned bank = 0; ///< bank within bank group
    unsigned row = 0;
    unsigned col = 0;

    bool operator==(const DramCoord &o) const = default;
};

std::ostream &operator<<(std::ostream &os, const DramCoord &coord);

/** Address bit-field order, listed LSB-first above the 32 B offset. */
enum class MappingScheme
{
    /** ch | bg | col | ba | row — fine channel interleave, bank-group
     *  rotation inside a row for tCCD_S streaming (default). */
    ChBgColBaRo,
    /** ch | col | bg | ba | row — channel interleave then whole rows. */
    ChColBgBaRo,
    /** row | col | bg | ba | ch — channel bits on top; one channel owns a
     *  contiguous region (used by tests to stress channel locality). */
    RoColBgBaCh,
};

/**
 * Invertible mapping between flat physical addresses and DRAM coordinates.
 *
 * The covered address space is numChannels * bytesPerPch bytes starting
 * at physical address zero.
 */
class AddressMapping
{
  public:
    AddressMapping(const HbmGeometry &geom, unsigned num_channels,
                   MappingScheme scheme = MappingScheme::ChBgColBaRo);

    /** Decompose a physical byte address (offset inside burst dropped). */
    DramCoord decode(Addr addr) const;

    /** Compose the physical byte address of a burst. */
    Addr encode(const DramCoord &coord) const;

    /** Total bytes covered by the mapping. */
    Addr capacity() const { return capacity_; }

    unsigned numChannels() const { return numChannels_; }
    const HbmGeometry &geometry() const { return geom_; }
    MappingScheme scheme() const { return scheme_; }

  private:
    enum class Field { Channel, BankGroup, Bank, Row, Col };

    struct FieldSpec
    {
        Field field;
        unsigned width; ///< bits
    };

    HbmGeometry geom_;
    unsigned numChannels_;
    MappingScheme scheme_;
    std::vector<FieldSpec> fields_; ///< LSB-first, above the burst offset
    Addr capacity_;
};

} // namespace pimsim

#endif // PIMSIM_DRAM_ADDRESS_H
