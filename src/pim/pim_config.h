/**
 * @file
 * Static configuration of the PIM execution units (Tables IV and V) and
 * the design-space-exploration variants of Section VII-D.
 */

#ifndef PIMSIM_PIM_PIM_CONFIG_H
#define PIMSIM_PIM_PIM_CONFIG_H

#include <cstdint>

#include "common/types.h"

namespace pimsim {

/**
 * Datapath number format. The product ships FP16 (Section III-C), but
 * Table I shows BFLOAT16 would be slightly smaller and more efficient;
 * the simulator supports both so the trade-off can be exercised.
 */
enum class PimNumberFormat
{
    Fp16,
    Bf16,
};

/** Design-space variants evaluated in Fig. 14. */
struct PimDseConfig
{
    /** PIM-HBM-2x: double the GRF/CRF resources (+24% die size). */
    bool doubleResources = false;
    /** PIM-HBM-2BA: one instruction may read EVEN and ODD bank at once. */
    bool twoBankAccess = false;
    /** PIM-HBM-SRW: a WR command delivers bus data and reads the bank. */
    bool simultaneousRdWr = false;

    bool any() const
    {
        return doubleResources || twoBankAccess || simultaneousRdWr;
    }
};

/** Configuration of one PIM execution unit and its per-pCH replication. */
struct PimConfig
{
    /** PIM execution units per pseudo channel (one per bank pair). */
    unsigned unitsPerPch = 8;
    /** CRF entries (32-bit instruction slots). */
    unsigned crfEntries = 32;
    /** GRF registers per half (GRF_A and GRF_B each; 256-bit registers). */
    unsigned grfPerHalf = 8;
    /** SRF registers per file (SRF_M and SRF_A each; 16-bit registers). */
    unsigned srfPerFile = 8;
    /** SIMD lanes (FP16). */
    unsigned lanes = 16;
    /** Execution pipeline depth (Section IV-B). */
    unsigned pipelineStages = 5;

    /** SIMD lane number format (the product uses FP16). */
    PimNumberFormat format = PimNumberFormat::Fp16;

    /**
     * HBM3-generation fine-grained mode interleaving (Section VIII
     * future work): SB <-> AB-PIM transitions through the PIM_OP_MODE
     * register alone, without the ABMR/SBMR ACT+PRE sequences. Cuts the
     * per-kernel-invocation overhead that limits decoder-style layers
     * and enables collaborative host+PIM execution.
     */
    bool fastModeSwitch = false;

    /**
     * Execute SIMD lane math as convert-once batch passes (widen the
     * whole row to float, compute, round back) instead of per-lane
     * scalar conversions. Both paths are bit-identical — the toggle
     * exists so bench_selfperf can measure the scalar baseline and so
     * tests can run the same workload through both implementations.
     */
    bool batchedLanes = true;

    PimConfig withFastModeSwitch() const
    {
        PimConfig c = *this;
        c.fastModeSwitch = true;
        return c;
    }

    PimDseConfig dse;

    PimConfig withBf16() const
    {
        PimConfig c = *this;
        c.format = PimNumberFormat::Bf16;
        return c;
    }

    /** Apply the 2x-resources variant. */
    PimConfig withDoubleResources() const
    {
        PimConfig c = *this;
        c.dse.doubleResources = true;
        c.crfEntries *= 2;
        c.grfPerHalf *= 2;
        c.srfPerFile *= 2;
        return c;
    }

    PimConfig withTwoBankAccess() const
    {
        PimConfig c = *this;
        c.dse.twoBankAccess = true;
        return c;
    }

    PimConfig withSimultaneousRdWr() const
    {
        PimConfig c = *this;
        c.dse.simultaneousRdWr = true;
        return c;
    }

    /**
     * AAM reorder window: the number of consecutive column commands that
     * may execute out of order (Section IV-C: limited by the GRF depth;
     * the host fences every `aamWindow` commands).
     */
    unsigned aamWindow() const { return grfPerHalf; }

    // ----- Table IV published constants (for the spec benches) -----

    /** Logic gate count of one execution unit. */
    static constexpr unsigned kGateCount = 200000;
    /** Area of one execution unit in mm^2 (20 nm DRAM process). */
    static constexpr double kAreaMm2 = 0.712;
    /** Peak throughput of one unit at the given core frequency. */
    static double unitGflops(double core_ghz, unsigned lanes)
    {
        // One FP16 multiply + one FP16 add per lane per core cycle.
        return core_ghz * lanes * 2.0;
    }
};

/**
 * Reserved rows inside every bank used as the PIM_CONF space (Fig. 3).
 *
 * The register map (CRF words, GRF, SRF files, PIM_OP_MODE) occupies a
 * flat column space spread over configRow and, when the 2x-resources
 * variant needs more than 32 columns, configRow2.
 */
struct PimConfMap
{
    unsigned configRow;  ///< register-mapped row (CRF/GRF/SRF/PIM_OP_MODE)
    unsigned abmrRow;    ///< ACT+PRE here enters AB mode
    unsigned sbmrRow;    ///< ACT+PRE here returns to SB mode
    unsigned configRow2; ///< overflow register-map row (2x variant)

    static PimConfMap forRows(unsigned rows_per_bank)
    {
        return {rows_per_bank - 1, rows_per_bank - 2, rows_per_bank - 3,
                rows_per_bank - 4};
    }

    bool isConfigRow(unsigned row) const
    {
        return row == configRow || row == configRow2;
    }

    /** First row index reserved for PIM configuration. */
    unsigned firstReservedRow() const { return configRow2; }
};

} // namespace pimsim

#endif // PIMSIM_PIM_PIM_CONFIG_H
