#include "pim/registers.h"

#include <cstring>

#include "common/logging.h"

namespace pimsim {

LaneVector
burstToLanes(const Burst &burst)
{
    LaneVector lanes;
    for (std::size_t i = 0; i < kSimdLanes; ++i) {
        Fp16Bits bits = static_cast<Fp16Bits>(
            burst[2 * i] | (static_cast<unsigned>(burst[2 * i + 1]) << 8));
        lanes[i] = Fp16::fromBits(bits);
    }
    return lanes;
}

Burst
lanesToBurst(const LaneVector &lanes)
{
    Burst burst{};
    for (std::size_t i = 0; i < kSimdLanes; ++i) {
        burst[2 * i] = static_cast<std::uint8_t>(lanes[i].bits() & 0xff);
        burst[2 * i + 1] = static_cast<std::uint8_t>(lanes[i].bits() >> 8);
    }
    return burst;
}

LaneVector
broadcast(Fp16 value)
{
    LaneVector lanes;
    lanes.fill(value);
    return lanes;
}

PimRegisterFile::PimRegisterFile(const PimConfig &config)
    : grfPerHalf_(config.grfPerHalf), srfPerFile_(config.srfPerFile),
      crf_(config.crfEntries, 0), grfA_(config.grfPerHalf),
      grfB_(config.grfPerHalf), srfM_(config.srfPerFile),
      srfA_(config.srfPerFile), crfPoison_(config.crfEntries, 0),
      grfPoisonA_(config.grfPerHalf, 0), grfPoisonB_(config.grfPerHalf, 0),
      srfPoisonM_(config.srfPerFile, 0), srfPoisonA_(config.srfPerFile, 0)
{
}

void
PimRegisterFile::reset()
{
    std::fill(crf_.begin(), crf_.end(), 0);
    for (auto &r : grfA_)
        r.fill(Fp16());
    for (auto &r : grfB_)
        r.fill(Fp16());
    std::fill(srfM_.begin(), srfM_.end(), Fp16());
    std::fill(srfA_.begin(), srfA_.end(), Fp16());
    std::fill(crfPoison_.begin(), crfPoison_.end(), 0);
    std::fill(grfPoisonA_.begin(), grfPoisonA_.end(), 0);
    std::fill(grfPoisonB_.begin(), grfPoisonB_.end(), 0);
    std::fill(srfPoisonM_.begin(), srfPoisonM_.end(), 0);
    std::fill(srfPoisonA_.begin(), srfPoisonA_.end(), 0);
}

std::uint32_t
PimRegisterFile::crf(unsigned index) const
{
    PIMSIM_ASSERT(index < crf_.size(), "CRF index ", index);
    return crf_[index];
}

void
PimRegisterFile::setCrf(unsigned index, std::uint32_t word)
{
    PIMSIM_ASSERT(index < crf_.size(), "CRF index ", index);
    crf_[index] = word;
    crfPoison_[index] = 0; // an overwrite masks an unconsumed plant
}

const LaneVector &
PimRegisterFile::grf(unsigned half, unsigned index) const
{
    const auto &file = half == 0 ? grfA_ : grfB_;
    PIMSIM_ASSERT(index < file.size(), "GRF index ", index);
    return file[index];
}

void
PimRegisterFile::setGrf(unsigned half, unsigned index,
                        const LaneVector &value)
{
    auto &file = half == 0 ? grfA_ : grfB_;
    PIMSIM_ASSERT(index < file.size(), "GRF index ", index);
    file[index] = value;
    (half == 0 ? grfPoisonA_ : grfPoisonB_)[index] = 0;
}

Fp16
PimRegisterFile::srf(unsigned file, unsigned index) const
{
    const auto &f = file == 0 ? srfM_ : srfA_;
    PIMSIM_ASSERT(index < f.size(), "SRF index ", index);
    return f[index];
}

void
PimRegisterFile::setSrf(unsigned file, unsigned index, Fp16 value)
{
    auto &f = file == 0 ? srfM_ : srfA_;
    PIMSIM_ASSERT(index < f.size(), "SRF index ", index);
    f[index] = value;
    (file == 0 ? srfPoisonM_ : srfPoisonA_)[index] = 0;
}

Burst
PimRegisterFile::srfFileAsBurst(unsigned file) const
{
    const auto &f = file == 0 ? srfM_ : srfA_;
    Burst burst{};
    for (std::size_t i = 0; i < f.size() && 2 * i + 1 < burst.size(); ++i) {
        burst[2 * i] = static_cast<std::uint8_t>(f[i].bits() & 0xff);
        burst[2 * i + 1] = static_cast<std::uint8_t>(f[i].bits() >> 8);
    }
    return burst;
}

void
PimRegisterFile::loadSrfFile(unsigned file, const Burst &data)
{
    auto &f = file == 0 ? srfM_ : srfA_;
    auto &poison = file == 0 ? srfPoisonM_ : srfPoisonA_;
    for (std::size_t i = 0; i < f.size() && 2 * i + 1 < data.size(); ++i) {
        f[i] = Fp16::fromBits(static_cast<Fp16Bits>(
            data[2 * i] | (static_cast<unsigned>(data[2 * i + 1]) << 8)));
        poison[i] = 0;
    }
}

void
PimRegisterFile::flipCrfBit(unsigned index, unsigned bit)
{
    PIMSIM_ASSERT(index < crf_.size() && bit < 32, "CRF flip at ", index,
                  ":", bit);
    crf_[index] ^= 1u << bit;
    crfPoison_[index] = 1;
}

void
PimRegisterFile::flipGrfBit(unsigned half, unsigned index, unsigned bit)
{
    auto &file = half == 0 ? grfA_ : grfB_;
    PIMSIM_ASSERT(index < file.size() && bit < kSimdLanes * 16,
                  "GRF flip at ", index, ":", bit);
    Fp16 &lane = file[index][bit / 16];
    lane = Fp16::fromBits(
        static_cast<Fp16Bits>(lane.bits() ^ (1u << (bit % 16))));
    (half == 0 ? grfPoisonA_ : grfPoisonB_)[index] = 1;
}

void
PimRegisterFile::flipSrfBit(unsigned file, unsigned index, unsigned bit)
{
    auto &f = file == 0 ? srfM_ : srfA_;
    PIMSIM_ASSERT(index < f.size() && bit < 16, "SRF flip at ", index, ":",
                  bit);
    f[index] = Fp16::fromBits(
        static_cast<Fp16Bits>(f[index].bits() ^ (1u << bit)));
    (file == 0 ? srfPoisonM_ : srfPoisonA_)[index] = 1;
}

bool
PimRegisterFile::grfPoisoned(unsigned half, unsigned index) const
{
    const auto &poison = half == 0 ? grfPoisonA_ : grfPoisonB_;
    PIMSIM_ASSERT(index < poison.size(), "GRF index ", index);
    return poison[index] != 0;
}

bool
PimRegisterFile::srfPoisoned(unsigned file, unsigned index) const
{
    const auto &poison = file == 0 ? srfPoisonM_ : srfPoisonA_;
    PIMSIM_ASSERT(index < poison.size(), "SRF index ", index);
    return poison[index] != 0;
}

bool
PimRegisterFile::crfPoisoned(unsigned index) const
{
    PIMSIM_ASSERT(index < crfPoison_.size(), "CRF index ", index);
    return crfPoison_[index] != 0;
}

void
PimRegisterFile::consumeGrfPoison(unsigned half, unsigned index)
{
    (half == 0 ? grfPoisonA_ : grfPoisonB_)[index] = 0;
}

void
PimRegisterFile::consumeSrfPoison(unsigned file, unsigned index)
{
    (file == 0 ? srfPoisonM_ : srfPoisonA_)[index] = 0;
}

void
PimRegisterFile::consumeCrfPoison(unsigned index)
{
    crfPoison_[index] = 0;
}

} // namespace pimsim
