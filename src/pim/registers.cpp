#include "pim/registers.h"

#include <cstring>

#include "common/logging.h"

namespace pimsim {

LaneVector
burstToLanes(const Burst &burst)
{
    LaneVector lanes;
    for (std::size_t i = 0; i < kSimdLanes; ++i) {
        Fp16Bits bits = static_cast<Fp16Bits>(
            burst[2 * i] | (static_cast<unsigned>(burst[2 * i + 1]) << 8));
        lanes[i] = Fp16::fromBits(bits);
    }
    return lanes;
}

Burst
lanesToBurst(const LaneVector &lanes)
{
    Burst burst{};
    for (std::size_t i = 0; i < kSimdLanes; ++i) {
        burst[2 * i] = static_cast<std::uint8_t>(lanes[i].bits() & 0xff);
        burst[2 * i + 1] = static_cast<std::uint8_t>(lanes[i].bits() >> 8);
    }
    return burst;
}

LaneVector
broadcast(Fp16 value)
{
    LaneVector lanes;
    lanes.fill(value);
    return lanes;
}

PimRegisterFile::PimRegisterFile(const PimConfig &config)
    : grfPerHalf_(config.grfPerHalf), srfPerFile_(config.srfPerFile),
      crf_(config.crfEntries, 0), grfA_(config.grfPerHalf),
      grfB_(config.grfPerHalf), srfM_(config.srfPerFile),
      srfA_(config.srfPerFile)
{
}

void
PimRegisterFile::reset()
{
    std::fill(crf_.begin(), crf_.end(), 0);
    for (auto &r : grfA_)
        r.fill(Fp16());
    for (auto &r : grfB_)
        r.fill(Fp16());
    std::fill(srfM_.begin(), srfM_.end(), Fp16());
    std::fill(srfA_.begin(), srfA_.end(), Fp16());
}

std::uint32_t
PimRegisterFile::crf(unsigned index) const
{
    PIMSIM_ASSERT(index < crf_.size(), "CRF index ", index);
    return crf_[index];
}

void
PimRegisterFile::setCrf(unsigned index, std::uint32_t word)
{
    PIMSIM_ASSERT(index < crf_.size(), "CRF index ", index);
    crf_[index] = word;
}

const LaneVector &
PimRegisterFile::grf(unsigned half, unsigned index) const
{
    const auto &file = half == 0 ? grfA_ : grfB_;
    PIMSIM_ASSERT(index < file.size(), "GRF index ", index);
    return file[index];
}

void
PimRegisterFile::setGrf(unsigned half, unsigned index,
                        const LaneVector &value)
{
    auto &file = half == 0 ? grfA_ : grfB_;
    PIMSIM_ASSERT(index < file.size(), "GRF index ", index);
    file[index] = value;
}

Fp16
PimRegisterFile::srf(unsigned file, unsigned index) const
{
    const auto &f = file == 0 ? srfM_ : srfA_;
    PIMSIM_ASSERT(index < f.size(), "SRF index ", index);
    return f[index];
}

void
PimRegisterFile::setSrf(unsigned file, unsigned index, Fp16 value)
{
    auto &f = file == 0 ? srfM_ : srfA_;
    PIMSIM_ASSERT(index < f.size(), "SRF index ", index);
    f[index] = value;
}

Burst
PimRegisterFile::srfFileAsBurst(unsigned file) const
{
    const auto &f = file == 0 ? srfM_ : srfA_;
    Burst burst{};
    for (std::size_t i = 0; i < f.size() && 2 * i + 1 < burst.size(); ++i) {
        burst[2 * i] = static_cast<std::uint8_t>(f[i].bits() & 0xff);
        burst[2 * i + 1] = static_cast<std::uint8_t>(f[i].bits() >> 8);
    }
    return burst;
}

void
PimRegisterFile::loadSrfFile(unsigned file, const Burst &data)
{
    auto &f = file == 0 ? srfM_ : srfA_;
    for (std::size_t i = 0; i < f.size() && 2 * i + 1 < data.size(); ++i) {
        f[i] = Fp16::fromBits(static_cast<Fp16Bits>(
            data[2 * i] | (static_cast<unsigned>(data[2 * i + 1]) << 8)));
    }
}

void
PimRegisterFile::flipCrfBit(unsigned index, unsigned bit)
{
    PIMSIM_ASSERT(index < crf_.size() && bit < 32, "CRF flip at ", index,
                  ":", bit);
    crf_[index] ^= 1u << bit;
}

void
PimRegisterFile::flipGrfBit(unsigned half, unsigned index, unsigned bit)
{
    auto &file = half == 0 ? grfA_ : grfB_;
    PIMSIM_ASSERT(index < file.size() && bit < kSimdLanes * 16,
                  "GRF flip at ", index, ":", bit);
    Fp16 &lane = file[index][bit / 16];
    lane = Fp16::fromBits(
        static_cast<Fp16Bits>(lane.bits() ^ (1u << (bit % 16))));
}

void
PimRegisterFile::flipSrfBit(unsigned file, unsigned index, unsigned bit)
{
    auto &f = file == 0 ? srfM_ : srfA_;
    PIMSIM_ASSERT(index < f.size() && bit < 16, "SRF flip at ", index, ":",
                  bit);
    f[index] = Fp16::fromBits(
        static_cast<Fp16Bits>(f[index].bits() ^ (1u << bit)));
}

} // namespace pimsim
