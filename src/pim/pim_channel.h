/**
 * @file
 * Per-pseudo-channel PIM logic: mode FSM and register-mapped access.
 *
 * Implements Section III-B's operation modes and transitions with nothing
 * but standard DRAM commands:
 *
 *  - SB -> AB:      ACT + PRE to the ABMR row of the PIM_CONF space.
 *  - AB -> SB:      ACT + PRE to the SBMR row (all rows precharged).
 *  - AB <-> AB-PIM: WR of 0/1 to the PIM_OP_MODE column of the config row.
 *
 * While the config row is open, column commands read/write the
 * register-mapped CRF/GRF/SRF. In AB-PIM mode, column commands to data
 * rows trigger PIM instructions in lock-step across all units.
 */

#ifndef PIMSIM_PIM_PIM_CHANNEL_H
#define PIMSIM_PIM_PIM_CHANNEL_H

#include <memory>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "dram/pseudo_channel.h"
#include "pim/pim_config.h"
#include "pim/pim_unit.h"

namespace pimsim {

/** Operation modes (Fig. 3). */
enum class PimMode
{
    Sb,    ///< single-bank: standard DRAM
    Ab,    ///< all-bank lock-step access
    AbPim, ///< all-bank, column commands trigger PIM instructions
};

const char *pimModeName(PimMode mode);

/** The PIM side of one pseudo channel. */
class PimChannel : public ColumnInterceptor
{
  public:
    PimChannel(const PimConfig &config, PseudoChannel &pch);

    PimMode mode() const { return mode_; }

    unsigned numUnits() const { return static_cast<unsigned>(units_.size()); }
    PimUnit &unit(unsigned index) { return *units_[index]; }
    const PimUnit &unit(unsigned index) const { return *units_[index]; }

    const PimConfMap &confMap() const { return conf_; }
    const PimConfig &config() const { return config_; }

    /** True once every unit has hit EXIT. */
    bool allUnitsHalted() const;

    /** True if any unit raised an illegal-instruction fault. */
    bool anyUnitFaulted() const;

    /** Sum of ground-truth SDC exposures over this channel's units. */
    std::uint64_t sdcExposed() const;

    // Flat column layout of the register map; columns beyond one row's
    // width spill into configRow2. Use configAddr() to get (row, col).
    unsigned crfCol(unsigned crf_index) const { return crf_index / 8; }
    unsigned grfACol(unsigned reg) const { return grfAColBase_ + reg; }
    unsigned grfBCol(unsigned reg) const { return grfBColBase_ + reg; }
    unsigned srfMCol() const { return srfMCol_; }
    unsigned srfACol() const { return srfACol_; }
    unsigned opModeCol() const { return opModeCol_; }

    /** Map a flat register-map column to a (row, DRAM column) pair. */
    std::pair<unsigned, unsigned> configAddr(unsigned flat_col) const
    {
        const unsigned cols = pch_.geometry().colsPerRow;
        return flat_col < cols
                   ? std::make_pair(conf_.configRow, flat_col)
                   : std::make_pair(conf_.configRow2, flat_col - cols);
    }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    // ColumnInterceptor interface.
    void onRowCommand(const Command &cmd, Cycle cycle) override;
    bool onColumnCommand(const Command &cmd, Cycle cycle,
                         Burst *rd_data) override;

  private:
    enum class Pending { None, Ab, Sb };

    bool handleConfigAccess(const Command &cmd, unsigned open_row,
                            Burst *rd_data);
    void setOpMode(bool pim_on);

    PimConfig config_;
    PseudoChannel &pch_;
    PimConfMap conf_;
    std::vector<std::unique_ptr<PimUnit>> units_;

    PimMode mode_ = PimMode::Sb;
    Pending pending_ = Pending::None;

    unsigned grfAColBase_;
    unsigned grfBColBase_;
    unsigned srfMCol_;
    unsigned srfACol_;
    unsigned opModeCol_;

    StatGroup stats_;
};

} // namespace pimsim

#endif // PIMSIM_PIM_PIM_CHANNEL_H
