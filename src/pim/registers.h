/**
 * @file
 * PIM execution unit register files (Section IV-A).
 *
 * CRF: 32 x 32-bit instruction slots (the microkernel buffer).
 * GRF: 16 x 256-bit vector registers, split into GRF_A (even bank) and
 *      GRF_B (odd bank) halves of 8 each.
 * SRF: 16 x 16-bit scalar registers, split into SRF_M (multiplicands)
 *      and SRF_A (addends) of 8 each; a scalar is broadcast to all lanes.
 */

#ifndef PIMSIM_PIM_REGISTERS_H
#define PIMSIM_PIM_REGISTERS_H

#include <array>
#include <cstdint>
#include <vector>

#include "common/fp16.h"
#include "common/types.h"
#include "dram/datastore.h"
#include "pim/pim_config.h"

namespace pimsim {

/** One 256-bit vector value: 16 FP16 lanes. */
using LaneVector = std::array<Fp16, kSimdLanes>;

/** Convert a raw 32-byte burst to 16 FP16 lanes (little-endian). */
LaneVector burstToLanes(const Burst &burst);

/** Convert 16 FP16 lanes to a raw 32-byte burst. */
Burst lanesToBurst(const LaneVector &lanes);

/** Broadcast one scalar to all lanes. */
LaneVector broadcast(Fp16 value);

/** The register state of one PIM execution unit. */
class PimRegisterFile
{
  public:
    explicit PimRegisterFile(const PimConfig &config);

    /** Reset every register to zero. */
    void reset();

    // CRF (instruction) access.
    std::uint32_t crf(unsigned index) const;
    void setCrf(unsigned index, std::uint32_t word);
    unsigned crfEntries() const { return static_cast<unsigned>(crf_.size()); }

    // GRF access (half: 0 == GRF_A, 1 == GRF_B).
    const LaneVector &grf(unsigned half, unsigned index) const;
    void setGrf(unsigned half, unsigned index, const LaneVector &value);
    unsigned grfPerHalf() const { return grfPerHalf_; }

    // SRF access (file: 0 == SRF_M, 1 == SRF_A).
    Fp16 srf(unsigned file, unsigned index) const;
    void setSrf(unsigned file, unsigned index, Fp16 value);
    unsigned srfPerFile() const { return srfPerFile_; }

    /** Read a whole SRF file as one burst (registers packed low-first). */
    Burst srfFileAsBurst(unsigned file) const;
    /** Load a whole SRF file from one burst. */
    void loadSrfFile(unsigned file, const Burst &data);

    // Fault injection (reliability campaigns). Unlike the DRAM arrays,
    // the register files have no ECC, so a flipped bit persists until the
    // register is next written.
    /** Flip one bit of a 32-bit CRF instruction slot. */
    void flipCrfBit(unsigned index, unsigned bit);
    /** Flip one bit of a GRF register (bit indexes the 256-bit value). */
    void flipGrfBit(unsigned half, unsigned index, unsigned bit);
    /** Flip one bit of a 16-bit SRF register. */
    void flipSrfBit(unsigned file, unsigned index, unsigned bit);

    // Poison tracking (SDC ground truth). A flip marks its register
    // poisoned; an overwrite clears the mark unconsumed (the fault was
    // masked). The datapath consumes the mark on first read of a still-
    // poisoned register — that is the moment a plant becomes a real
    // silent-data-corruption exposure (see PimUnit::sdcExposed()).
    bool grfPoisoned(unsigned half, unsigned index) const;
    bool srfPoisoned(unsigned file, unsigned index) const;
    bool crfPoisoned(unsigned index) const;
    /** Clear the poison mark after counting one exposure. */
    void consumeGrfPoison(unsigned half, unsigned index);
    void consumeSrfPoison(unsigned file, unsigned index);
    void consumeCrfPoison(unsigned index);

  private:
    unsigned grfPerHalf_;
    unsigned srfPerFile_;
    std::vector<std::uint32_t> crf_;
    std::vector<LaneVector> grfA_;
    std::vector<LaneVector> grfB_;
    std::vector<Fp16> srfM_;
    std::vector<Fp16> srfA_;
    // One poison flag per register (not per bit): any unconsumed flip
    // taints the whole value until it is overwritten or read.
    std::vector<std::uint8_t> crfPoison_;
    std::vector<std::uint8_t> grfPoisonA_;
    std::vector<std::uint8_t> grfPoisonB_;
    std::vector<std::uint8_t> srfPoisonM_;
    std::vector<std::uint8_t> srfPoisonA_;
};

} // namespace pimsim

#endif // PIMSIM_PIM_REGISTERS_H
