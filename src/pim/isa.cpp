#include "pim/isa.h"

#include <ostream>
#include <sstream>

#include "common/bits.h"
#include "common/logging.h"

namespace pimsim {

const char *
pimOpcodeName(PimOpcode op)
{
    switch (op) {
      case PimOpcode::Nop:
        return "NOP";
      case PimOpcode::Jump:
        return "JUMP";
      case PimOpcode::Exit:
        return "EXIT";
      case PimOpcode::Mov:
        return "MOV";
      case PimOpcode::Fill:
        return "FILL";
      case PimOpcode::Add:
        return "ADD";
      case PimOpcode::Mul:
        return "MUL";
      case PimOpcode::Mac:
        return "MAC";
      case PimOpcode::Mad:
        return "MAD";
    }
    return "???";
}

const char *
operandSpaceName(OperandSpace space)
{
    switch (space) {
      case OperandSpace::GrfA:
        return "GRF_A";
      case OperandSpace::GrfB:
        return "GRF_B";
      case OperandSpace::EvenBank:
        return "EVEN_BANK";
      case OperandSpace::OddBank:
        return "ODD_BANK";
      case OperandSpace::SrfM:
        return "SRF_M";
      case OperandSpace::SrfA:
        return "SRF_A";
    }
    return "???";
}

bool
isValidEncoding(std::uint32_t word)
{
    const auto raw_op = static_cast<unsigned>(extractBits(word, 28, 4));
    switch (static_cast<PimOpcode>(raw_op)) {
      case PimOpcode::Nop:
      case PimOpcode::Jump:
      case PimOpcode::Exit:
        return true;
      case PimOpcode::Mov:
      case PimOpcode::Fill:
      case PimOpcode::Add:
      case PimOpcode::Mul:
      case PimOpcode::Mac:
      case PimOpcode::Mad:
        break;
      default:
        return false;
    }
    // Data/ALU format: each 3-bit space field must name a real space.
    for (unsigned lsb : {25u, 22u, 19u, 16u}) {
        if (extractBits(word, lsb, 3) > 5)
            return false;
    }
    return true;
}

std::uint32_t
PimInst::encode() const
{
    std::uint64_t w = 0;
    w = insertBits(w, 28, 4, static_cast<unsigned>(opcode));
    if (isControlOpcode(opcode)) {
        w = insertBits(w, 16, 11, imm0);
        w = insertBits(w, 0, 16, imm1);
    } else {
        w = insertBits(w, 25, 3, static_cast<unsigned>(dst));
        w = insertBits(w, 22, 3, static_cast<unsigned>(src0));
        w = insertBits(w, 19, 3, static_cast<unsigned>(src1));
        w = insertBits(w, 16, 3, static_cast<unsigned>(src2));
        w = insertBits(w, 15, 1, aam ? 1 : 0);
        w = insertBits(w, 14, 1, relu ? 1 : 0);
        w = insertBits(w, 8, 4, dstIdx);
        w = insertBits(w, 4, 4, src0Idx);
        w = insertBits(w, 0, 4, src1Idx);
    }
    return static_cast<std::uint32_t>(w);
}

PimInst
PimInst::decode(std::uint32_t word)
{
    PimInst inst;
    inst.opcode = static_cast<PimOpcode>(extractBits(word, 28, 4));
    if (isControlOpcode(inst.opcode)) {
        inst.imm0 = static_cast<unsigned>(extractBits(word, 16, 11));
        inst.imm1 = static_cast<unsigned>(extractBits(word, 0, 16));
    } else {
        inst.dst = static_cast<OperandSpace>(extractBits(word, 25, 3));
        inst.src0 = static_cast<OperandSpace>(extractBits(word, 22, 3));
        inst.src1 = static_cast<OperandSpace>(extractBits(word, 19, 3));
        inst.src2 = static_cast<OperandSpace>(extractBits(word, 16, 3));
        inst.aam = extractBits(word, 15, 1) != 0;
        inst.relu = extractBits(word, 14, 1) != 0;
        inst.dstIdx = static_cast<unsigned>(extractBits(word, 8, 4));
        inst.src0Idx = static_cast<unsigned>(extractBits(word, 4, 4));
        inst.src1Idx = static_cast<unsigned>(extractBits(word, 0, 4));
    }
    return inst;
}

bool
PimInst::operator==(const PimInst &other) const
{
    return encode() == other.encode();
}

std::string
PimInst::disassemble() const
{
    std::ostringstream os;
    os << pimOpcodeName(opcode);
    if (opcode == PimOpcode::Jump) {
        os << " -" << imm0 << ", x" << imm1;
    } else if (opcode == PimOpcode::Nop) {
        os << " x" << imm0;
    } else if (!isControlOpcode(opcode)) {
        os << (relu ? "(ReLU)" : "") << " " << operandSpaceName(dst) << "["
           << dstIdx << "], " << operandSpaceName(src0) << "[" << src0Idx
           << "]";
        if (!isDataOpcode(opcode)) {
            os << ", " << operandSpaceName(src1) << "[" << src1Idx << "]";
            if (opcode == PimOpcode::Mad)
                os << ", SRF_A[" << src1Idx << "]";
        }
        if (aam)
            os << " (AAM)";
    }
    return os.str();
}

std::ostream &
operator<<(std::ostream &os, const PimInst &inst)
{
    return os << inst.disassemble();
}

PimInst
PimInst::nop(unsigned count)
{
    PimInst i;
    i.opcode = PimOpcode::Nop;
    i.imm0 = count;
    return i;
}

PimInst
PimInst::jump(unsigned back, unsigned iterations)
{
    PimInst i;
    i.opcode = PimOpcode::Jump;
    i.imm0 = back;
    i.imm1 = iterations;
    return i;
}

PimInst
PimInst::exit()
{
    PimInst i;
    i.opcode = PimOpcode::Exit;
    return i;
}

PimInst
PimInst::mov(OperandSpace dst, unsigned dst_idx, OperandSpace src,
             unsigned src_idx, bool relu, bool aam)
{
    PimInst i;
    i.opcode = PimOpcode::Mov;
    i.dst = dst;
    i.dstIdx = dst_idx;
    i.src0 = src;
    i.src0Idx = src_idx;
    i.relu = relu;
    i.aam = aam;
    return i;
}

PimInst
PimInst::fill(OperandSpace dst, unsigned dst_idx, OperandSpace src,
              unsigned src_idx, bool aam)
{
    PimInst i = mov(dst, dst_idx, src, src_idx, false, aam);
    i.opcode = PimOpcode::Fill;
    return i;
}

namespace {

PimInst
makeAlu(PimOpcode op, OperandSpace dst, unsigned dst_idx, OperandSpace src0,
        unsigned s0, OperandSpace src1, unsigned s1, bool aam)
{
    PimInst i;
    i.opcode = op;
    i.dst = dst;
    i.dstIdx = dst_idx;
    i.src0 = src0;
    i.src0Idx = s0;
    i.src1 = src1;
    i.src1Idx = s1;
    i.aam = aam;
    // SRC2 is implied: the accumulator for MAC, SRF_A for MAD.
    i.src2 = op == PimOpcode::Mad ? OperandSpace::SrfA : dst;
    return i;
}

} // namespace

PimInst
PimInst::add(OperandSpace dst, unsigned dst_idx, OperandSpace src0,
             unsigned s0, OperandSpace src1, unsigned s1, bool aam)
{
    return makeAlu(PimOpcode::Add, dst, dst_idx, src0, s0, src1, s1, aam);
}

PimInst
PimInst::mul(OperandSpace dst, unsigned dst_idx, OperandSpace src0,
             unsigned s0, OperandSpace src1, unsigned s1, bool aam)
{
    return makeAlu(PimOpcode::Mul, dst, dst_idx, src0, s0, src1, s1, aam);
}

PimInst
PimInst::mac(OperandSpace dst, unsigned dst_idx, OperandSpace src0,
             unsigned s0, OperandSpace src1, unsigned s1, bool aam)
{
    return makeAlu(PimOpcode::Mac, dst, dst_idx, src0, s0, src1, s1, aam);
}

PimInst
PimInst::mad(OperandSpace dst, unsigned dst_idx, OperandSpace src0,
             unsigned s0, OperandSpace src1, unsigned s1, bool aam)
{
    return makeAlu(PimOpcode::Mad, dst, dst_idx, src0, s0, src1, s1, aam);
}

namespace {

const OperandSpace kAllSpaces[] = {
    OperandSpace::GrfA,     OperandSpace::GrfB, OperandSpace::EvenBank,
    OperandSpace::OddBank,  OperandSpace::SrfM, OperandSpace::SrfA,
};

bool
src0Allowed(PimOpcode op, OperandSpace s)
{
    switch (op) {
      case PimOpcode::Add:
        return isGrfSpace(s) || isBankSpace(s) || s == OperandSpace::SrfA;
      case PimOpcode::Mul:
      case PimOpcode::Mac:
      case PimOpcode::Mad:
        return isGrfSpace(s) || isBankSpace(s);
      default:
        return false;
    }
}

bool
src1Allowed(PimOpcode op, OperandSpace s)
{
    switch (op) {
      case PimOpcode::Add:
        return isGrfSpace(s) || isBankSpace(s) || s == OperandSpace::SrfA;
      case PimOpcode::Mul:
      case PimOpcode::Mac:
      case PimOpcode::Mad:
        return isGrfSpace(s) || isBankSpace(s) || s == OperandSpace::SrfM;
      default:
        return false;
    }
}

bool
dstAllowed(PimOpcode op, OperandSpace s)
{
    switch (op) {
      case PimOpcode::Add:
      case PimOpcode::Mul:
      case PimOpcode::Mad:
        return isGrfSpace(s);
      case PimOpcode::Mac:
        // MAC accumulates into GRF_B (Table II: DST = GRF_B; the SRC2
        // field aliases the destination register).
        return s == OperandSpace::GrfB;
      default:
        return false;
    }
}

} // namespace

bool
isLegalCompute(PimOpcode op, OperandSpace src0, OperandSpace src1,
               OperandSpace dst)
{
    if (!isArithmeticOpcode(op))
        return false;
    if (!src0Allowed(op, src0) || !src1Allowed(op, src1) ||
        !dstAllowed(op, dst)) {
        return false;
    }
    // One bank access per trigger: SRC0 and SRC1 cannot both be banks.
    if (isBankSpace(src0) && isBankSpace(src1))
        return false;
    // The SRF is single-ported: it cannot feed both sources.
    if (isSrfSpace(src0) && isSrfSpace(src1))
        return false;
    // Three-operand ops cannot read the same GRF half for both sources
    // (read-port conflict with the third operand).
    if ((op == PimOpcode::Mac || op == PimOpcode::Mad) && isGrfSpace(src0) &&
        src0 == src1) {
        return false;
    }
    return true;
}

bool
isLegalMove(OperandSpace src, OperandSpace dst)
{
    // Data movement among GRF, SRF and BANK (Section III-C): any of the
    // six spaces can source a move; the destination is a GRF half or a
    // bank. SRF is loaded via FILL from a bank/GRF through the same path.
    (void)src;
    return isGrfSpace(dst) || isBankSpace(dst);
}

std::vector<std::array<OperandSpace, 3>>
enumerateCompute(PimOpcode op)
{
    std::vector<std::array<OperandSpace, 3>> result;
    for (OperandSpace s0 : kAllSpaces)
        for (OperandSpace s1 : kAllSpaces)
            for (OperandSpace d : kAllSpaces)
                if (isLegalCompute(op, s0, s1, d))
                    result.push_back({s0, s1, d});
    return result;
}

unsigned
countCombinations(PimOpcode op)
{
    if (isArithmeticOpcode(op))
        return static_cast<unsigned>(enumerateCompute(op).size());
    if (op == PimOpcode::Mov || op == PimOpcode::Fill) {
        unsigned count = 0;
        for (OperandSpace s : kAllSpaces)
            for (OperandSpace d : kAllSpaces)
                if (isLegalMove(s, d))
                    ++count;
        return count;
    }
    return 0;
}

} // namespace pimsim
