/**
 * @file
 * The PIM instruction set architecture (Sections III-C and IV, Table III).
 *
 * 32-bit RISC-style instructions in three formats:
 *  - Control: NOP, JUMP, EXIT            (IMM0 / IMM1 fields)
 *  - Data:    MOV, FILL                  (operand spaces + ReLU flag)
 *  - ALU:     ADD, MUL, MAC, MAD         (operand spaces + AAM flag)
 *
 * Field layout used here (LSB-first register indices; functionally
 * equivalent to the paper's Table III layout):
 *
 *   [31:28] opcode
 *   [27:25] dst space     [24:22] src0 space
 *   [21:19] src1 space    [18:16] src2 space
 *   [15]    A (address-aligned mode)      [14] R (ReLU on MOV)
 *   [11:8]  dst index     [7:4] src0 index   [3:0] src1 index
 *
 * Control format instead carries  [26:16] imm0  and  [15:0] imm1.
 */

#ifndef PIMSIM_PIM_ISA_H
#define PIMSIM_PIM_ISA_H

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace pimsim {

/** The nine PIM instructions (Table III). */
enum class PimOpcode : std::uint8_t
{
    Nop = 0,  ///< control: idle for IMM0 triggers (multi-cycle NOP)
    Jump = 1, ///< control: zero-cycle loop back IMM0 slots, IMM1 iterations
    Exit = 2, ///< control: end of microkernel
    Mov = 3,  ///< data movement (optionally fused ReLU via the R bit)
    Fill = 4, ///< data movement into registers (bank -> GRF/SRF)
    Add = 8,  ///< FP16 SIMD add
    Mul = 9,  ///< FP16 SIMD multiply
    Mac = 10, ///< FP16 SIMD multiply-accumulate (DST == SRC2)
    Mad = 11, ///< FP16 SIMD multiply-add (SRC2 from SRF_A)
};

/** Operand source/destination spaces. */
enum class OperandSpace : std::uint8_t
{
    GrfA = 0,     ///< general register file, even-bank half (8 x 256 b)
    GrfB = 1,     ///< general register file, odd-bank half (8 x 256 b)
    EvenBank = 2, ///< row buffer of the even bank of the pair
    OddBank = 3,  ///< row buffer of the odd bank of the pair
    SrfM = 4,     ///< scalar register file, multiplicands (8 x 16 b)
    SrfA = 5,     ///< scalar register file, addends (8 x 16 b)
};

const char *pimOpcodeName(PimOpcode op);
const char *operandSpaceName(OperandSpace space);

inline bool
isBankSpace(OperandSpace s)
{
    return s == OperandSpace::EvenBank || s == OperandSpace::OddBank;
}

inline bool
isGrfSpace(OperandSpace s)
{
    return s == OperandSpace::GrfA || s == OperandSpace::GrfB;
}

inline bool
isSrfSpace(OperandSpace s)
{
    return s == OperandSpace::SrfM || s == OperandSpace::SrfA;
}

inline bool
isControlOpcode(PimOpcode op)
{
    return op == PimOpcode::Nop || op == PimOpcode::Jump ||
           op == PimOpcode::Exit;
}

inline bool
isArithmeticOpcode(PimOpcode op)
{
    return op == PimOpcode::Add || op == PimOpcode::Mul ||
           op == PimOpcode::Mac || op == PimOpcode::Mad;
}

inline bool
isDataOpcode(PimOpcode op)
{
    return op == PimOpcode::Mov || op == PimOpcode::Fill;
}

/**
 * True iff `word` decodes to an architecturally defined instruction:
 * the opcode is one of the nine of Table III and, for the data/ALU
 * formats, every operand-space field names one of the six spaces. A
 * corrupted CRF slot (bit flip in the opcode or a space field) fails
 * this check; the sequencer raises an illegal-instruction fault instead
 * of executing garbage.
 */
bool isValidEncoding(std::uint32_t word);

/** One decoded PIM instruction. */
struct PimInst
{
    PimOpcode opcode = PimOpcode::Nop;

    // Data/ALU formats.
    OperandSpace dst = OperandSpace::GrfA;
    OperandSpace src0 = OperandSpace::GrfA;
    OperandSpace src1 = OperandSpace::GrfA;
    OperandSpace src2 = OperandSpace::GrfA;
    unsigned dstIdx = 0;
    unsigned src0Idx = 0;
    unsigned src1Idx = 0;
    bool aam = false;  ///< 'A': take register indices from the DRAM address
    bool relu = false; ///< 'R': MOV applies ReLU during the move

    // Control format.
    unsigned imm0 = 0; ///< JUMP: slots to jump back; NOP: trigger count
    unsigned imm1 = 0; ///< JUMP: iteration count

    /** Encode to the 32-bit machine format. */
    std::uint32_t encode() const;

    /** Decode from the 32-bit machine format. */
    static PimInst decode(std::uint32_t word);

    /** Human-readable disassembly. */
    std::string disassemble() const;

    bool operator==(const PimInst &other) const;

    // Convenience constructors for microkernel authoring.
    static PimInst nop(unsigned count = 1);
    static PimInst jump(unsigned back, unsigned iterations);
    static PimInst exit();
    static PimInst mov(OperandSpace dst, unsigned dst_idx, OperandSpace src,
                       unsigned src_idx, bool relu = false, bool aam = false);
    static PimInst fill(OperandSpace dst, unsigned dst_idx, OperandSpace src,
                        unsigned src_idx, bool aam = false);
    static PimInst add(OperandSpace dst, unsigned dst_idx, OperandSpace src0,
                       unsigned s0, OperandSpace src1, unsigned s1,
                       bool aam = false);
    static PimInst mul(OperandSpace dst, unsigned dst_idx, OperandSpace src0,
                       unsigned s0, OperandSpace src1, unsigned s1,
                       bool aam = false);
    static PimInst mac(OperandSpace dst, unsigned dst_idx, OperandSpace src0,
                       unsigned s0, OperandSpace src1, unsigned s1,
                       bool aam = false);
    static PimInst mad(OperandSpace dst, unsigned dst_idx, OperandSpace src0,
                       unsigned s0, OperandSpace src1, unsigned s1,
                       bool aam = false);
};

std::ostream &operator<<(std::ostream &os, const PimInst &inst);

/**
 * Operand-combination legality (Table II).
 *
 * The rules below reproduce the paper's counts exactly
 * (MUL 32, ADD 40, MAC 14, MAD 28 -> 114 compute; MOV 24 data movements):
 *  - SRC0 and SRC1 may never both be bank spaces (one bank access per
 *    trigger; the 2BA DSE variant relaxes this).
 *  - The single-ported SRF cannot feed both sources of an ADD.
 *  - Three-operand ops (MAC, MAD) cannot read the same GRF half for both
 *    sources (read-port conflict with the third operand).
 *  - MAC accumulates into GRF_B (DST == SRC2).
 *  - MAD draws SRC2 from SRF_A (same index as SRC1).
 *  - MOV moves from any of the six spaces into GRF or bank.
 */
bool isLegalCompute(PimOpcode op, OperandSpace src0, OperandSpace src1,
                    OperandSpace dst);

/** Legality of a MOV/FILL source/destination pair. */
bool isLegalMove(OperandSpace src, OperandSpace dst);

/** Count of legal operand combinations for one opcode (Table II rows). */
unsigned countCombinations(PimOpcode op);

/** All legal (src0, src1, dst) triples for a compute opcode. */
std::vector<std::array<OperandSpace, 3>> enumerateCompute(PimOpcode op);

} // namespace pimsim

#endif // PIMSIM_PIM_ISA_H
