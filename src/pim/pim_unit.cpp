#include "pim/pim_unit.h"

#include "common/bf16.h"
#include "common/logging.h"

namespace pimsim {


namespace {

/**
 * One SIMD lane operation in the configured number format. Lanes are
 * carried as raw 16-bit patterns (Fp16 wrappers); in BF16 mode the same
 * bits are interpreted as bfloat16 (Table I's alternative datapath).
 */
Fp16
laneAdd(PimNumberFormat fmt, Fp16 a, Fp16 b)
{
    if (fmt == PimNumberFormat::Fp16)
        return fp16Add(a, b);
    return Fp16::fromBits(
        bf16Add(Bf16::fromBits(a.bits()), Bf16::fromBits(b.bits())).bits());
}

Fp16
laneMul(PimNumberFormat fmt, Fp16 a, Fp16 b)
{
    if (fmt == PimNumberFormat::Fp16)
        return fp16Mul(a, b);
    return Fp16::fromBits(
        bf16Mul(Bf16::fromBits(a.bits()), Bf16::fromBits(b.bits())).bits());
}

Fp16
laneMac(PimNumberFormat fmt, Fp16 a, Fp16 b, Fp16 c)
{
    if (fmt == PimNumberFormat::Fp16)
        return fp16Mac(a, b, c);
    return Fp16::fromBits(bf16Mac(Bf16::fromBits(a.bits()),
                                  Bf16::fromBits(b.bits()),
                                  Bf16::fromBits(c.bits()))
                              .bits());
}

/**
 * Batch lane passes: widen the whole SIMD row to float once, compute in
 * float, round back once. Bit-identical to the per-lane scalar helpers
 * above — the float add/mul of two 16-bit-significand values is exact,
 * and the MAC keeps the non-fused double rounding by rounding the
 * product row to format precision before the accumulate.
 */
void
lanesWiden(PimNumberFormat fmt, const LaneVector &v, float *out)
{
    Fp16Bits bits[kSimdLanes];
    for (std::size_t i = 0; i < kSimdLanes; ++i)
        bits[i] = v[i].bits();
    if (fmt == PimNumberFormat::Fp16)
        fp16ToFloatN(bits, out, kSimdLanes);
    else
        bf16ToFloatN(bits, out, kSimdLanes);
}

LaneVector
lanesNarrow(PimNumberFormat fmt, const float *in)
{
    Fp16Bits bits[kSimdLanes];
    if (fmt == PimNumberFormat::Fp16)
        floatToFp16N(in, bits, kSimdLanes);
    else
        floatToBf16N(in, bits, kSimdLanes);
    LaneVector r;
    for (std::size_t i = 0; i < kSimdLanes; ++i)
        r[i] = Fp16::fromBits(bits[i]);
    return r;
}

LaneVector
batchAdd(PimNumberFormat fmt, const LaneVector &a, const LaneVector &b)
{
    float fa[kSimdLanes], fb[kSimdLanes];
    lanesWiden(fmt, a, fa);
    lanesWiden(fmt, b, fb);
    for (std::size_t i = 0; i < kSimdLanes; ++i)
        fa[i] += fb[i];
    return lanesNarrow(fmt, fa);
}

LaneVector
batchMul(PimNumberFormat fmt, const LaneVector &a, const LaneVector &b)
{
    float fa[kSimdLanes], fb[kSimdLanes];
    lanesWiden(fmt, a, fa);
    lanesWiden(fmt, b, fb);
    for (std::size_t i = 0; i < kSimdLanes; ++i)
        fa[i] *= fb[i];
    return lanesNarrow(fmt, fa);
}

LaneVector
batchMac(PimNumberFormat fmt, const LaneVector &a, const LaneVector &b,
         const LaneVector &acc)
{
    float fa[kSimdLanes], fb[kSimdLanes], fc[kSimdLanes];
    lanesWiden(fmt, a, fa);
    lanesWiden(fmt, b, fb);
    lanesWiden(fmt, acc, fc);
    for (std::size_t i = 0; i < kSimdLanes; ++i)
        fa[i] *= fb[i];
    // Non-fused datapath: round the product row before accumulating.
    if (fmt == PimNumberFormat::Fp16)
        fp16RoundFloatN(fa, kSimdLanes);
    else
        bf16RoundFloatN(fa, kSimdLanes);
    for (std::size_t i = 0; i < kSimdLanes; ++i)
        fa[i] += fc[i];
    return lanesNarrow(fmt, fa);
}

LaneVector
rowAdd(bool batched, PimNumberFormat fmt, const LaneVector &a,
       const LaneVector &b)
{
    if (batched)
        return batchAdd(fmt, a, b);
    LaneVector r;
    for (std::size_t i = 0; i < kSimdLanes; ++i)
        r[i] = laneAdd(fmt, a[i], b[i]);
    return r;
}

LaneVector
rowMul(bool batched, PimNumberFormat fmt, const LaneVector &a,
       const LaneVector &b)
{
    if (batched)
        return batchMul(fmt, a, b);
    LaneVector r;
    for (std::size_t i = 0; i < kSimdLanes; ++i)
        r[i] = laneMul(fmt, a[i], b[i]);
    return r;
}

LaneVector
rowMac(bool batched, PimNumberFormat fmt, const LaneVector &a,
       const LaneVector &b, const LaneVector &acc)
{
    if (batched)
        return batchMac(fmt, a, b, acc);
    LaneVector r;
    for (std::size_t i = 0; i < kSimdLanes; ++i)
        r[i] = laneMac(fmt, a[i], b[i], acc[i]);
    return r;
}

} // namespace

PimUnit::PimUnit(const PimConfig &config, unsigned index, PseudoChannel &pch,
                 StatGroup *stats)
    : config_(config), evenBank_(2 * index), oddBank_(2 * index + 1),
      pch_(pch), regs_(config), stats_(stats),
      jumpRemaining_(config.crfEntries, -1)
{
    PIMSIM_ASSERT(oddBank_ < pch.geometry().banksPerPch(),
                  "PIM unit index out of range: ", index);
}

void
PimUnit::resetProgram()
{
    ppc_ = 0;
    halted_ = false;
    faulted_ = false;
    nopConsumed_ = 0;
    executed_ = 0;
    std::fill(jumpRemaining_.begin(), jumpRemaining_.end(), -1);
}

void
PimUnit::raiseIllegalInst(std::uint32_t word)
{
    // A corrupted CRF slot (the register files carry no ECC) must not
    // crash the device model: raise a sticky fault and halt. The runtime
    // sees the fault via PimChannel::anyUnitFaulted() and recovers.
    PIMSIM_WARN("PIM unit (banks ", evenBank_, "/", oddBank_,
                ") illegal instruction word ", word, " at CRF[", ppc_,
                "]");
    if (stats_)
        stats_->add("pim.illegalInst");
    faulted_ = true;
    halted_ = true;
}

void
PimUnit::noteExposure()
{
    ++sdcExposed_;
    if (stats_)
        stats_->add("pim.sdcExposed");
}

void
PimUnit::resolveControl()
{
    // JUMP and EXIT are pre-decoded at the fetch stage and consume no
    // trigger. A JUMP with iteration count N makes its loop body run N
    // times in total (the backward branch is taken N-1 times).
    for (;;) {
        if (halted_ || ppc_ >= regs_.crfEntries()) {
            halted_ = true;
            return;
        }
        const std::uint32_t word = regs_.crf(ppc_);
        if (!isValidEncoding(word)) {
            raiseIllegalInst(word);
            return;
        }
        // A corrupted CRF slot that still decodes is about to steer the
        // kernel silently — that is an exposure. (An invalid encoding
        // raises a reported fault above and never counts.)
        if (regs_.crfPoisoned(ppc_)) {
            regs_.consumeCrfPoison(ppc_);
            noteExposure();
        }
        const PimInst inst = PimInst::decode(word);
        if (inst.opcode == PimOpcode::Exit) {
            halted_ = true;
            return;
        }
        if (inst.opcode != PimOpcode::Jump)
            return;
        int &remaining = jumpRemaining_[ppc_];
        if (remaining < 0)
            remaining = static_cast<int>(inst.imm1) - 1;
        if (remaining > 0) {
            --remaining;
            if (inst.imm0 > ppc_) {
                // A corrupted offset would branch before CRF[0]; treat it
                // as an illegal instruction rather than a simulator bug.
                raiseIllegalInst(word);
                return;
            }
            ppc_ -= inst.imm0;
        } else {
            remaining = -1;
            ++ppc_;
        }
    }
}

unsigned
PimUnit::effectiveIndex(const PimInst &inst, unsigned encoded,
                        OperandSpace space, unsigned col) const
{
    if (!inst.aam)
        return encoded;
    // Address-aligned mode (Section IV-C): register indices come from the
    // low bits of the DRAM column address, so consecutive column commands
    // walk the register file regardless of reorder.
    if (isSrfSpace(space))
        return col % config_.srfPerFile;
    return col % config_.grfPerHalf;
}

LaneVector
PimUnit::fetchOperand(OperandSpace space, unsigned index, CommandType type,
                      unsigned col, const Burst *bus_data, bool is_src1)
{
    switch (space) {
      case OperandSpace::GrfA:
      case OperandSpace::GrfB: {
        const unsigned half = space == OperandSpace::GrfA ? 0 : 1;
        if (regs_.grfPoisoned(half, index)) {
            regs_.consumeGrfPoison(half, index);
            noteExposure();
        }
        return regs_.grf(half, index);
      }
      case OperandSpace::SrfM:
      case OperandSpace::SrfA: {
        const unsigned file = space == OperandSpace::SrfM ? 0 : 1;
        if (regs_.srfPoisoned(file, index)) {
            regs_.consumeSrfPoison(file, index);
            noteExposure();
        }
        return broadcast(regs_.srf(file, index));
      }
      case OperandSpace::EvenBank:
      case OperandSpace::OddBank: {
        // A WR trigger carries host data on the write bus; a bank-space
        // source then reads the bus instead of the array. With the SRW
        // variant (Fig. 14), SRC1 still reads the bank so one WR can
        // deliver a vector operand and stream a matrix operand at once.
        const bool from_bus =
            type == CommandType::Wr &&
            !(config_.dse.simultaneousRdWr && is_src1);
        if (from_bus) {
            PIMSIM_ASSERT(bus_data != nullptr, "WR trigger without data");
            if (stats_)
                stats_->add("pim.busOperand");
            return burstToLanes(*bus_data);
        }
        const unsigned bank =
            space == OperandSpace::EvenBank ? evenBank_ : oddBank_;
        PIMSIM_ASSERT(pch_.bank(bank).state == BankState::Active,
                      "bank operand fetch from idle bank ", bank);
        if (stats_)
            stats_->add("pim.bankRead");
        // The bank read passes through the same on-die ECC engine as a
        // host RD (Section VIII); count what it observes. The DataStore
        // hook additionally records the event in the system error log.
        EccStatus ecc = EccStatus::Ok;
        const Burst data =
            pch_.dataStore().read(bank, pch_.bank(bank).openRow, col, &ecc);
        if (stats_ && ecc == EccStatus::Corrected)
            stats_->add("pim.eccCorrected");
        if (stats_ && ecc == EccStatus::Uncorrectable)
            stats_->add("pim.eccUncorrectable");
        return burstToLanes(data);
      }
    }
    PIMSIM_PANIC("bad operand space");
}

void
PimUnit::writeResult(OperandSpace space, unsigned index, unsigned col,
                     const LaneVector &value)
{
    switch (space) {
      case OperandSpace::GrfA:
        regs_.setGrf(0, index, value);
        return;
      case OperandSpace::GrfB:
        regs_.setGrf(1, index, value);
        return;
      case OperandSpace::EvenBank:
      case OperandSpace::OddBank: {
        const unsigned bank =
            space == OperandSpace::EvenBank ? evenBank_ : oddBank_;
        PIMSIM_ASSERT(pch_.bank(bank).state == BankState::Active,
                      "bank result write to idle bank ", bank);
        if (stats_)
            stats_->add("pim.bankWrite");
        pch_.dataStore().write(bank, pch_.bank(bank).openRow, col,
                               lanesToBurst(value));
        return;
      }
      case OperandSpace::SrfM:
      case OperandSpace::SrfA:
        // SRF is loaded through the PIM_CONF register map, not by
        // microkernel results.
        PIMSIM_PANIC("SRF is not a legal result destination");
    }
}

void
PimUnit::trigger(CommandType type, unsigned col, const Burst *bus_data)
{
    resolveControl();
    if (halted_) {
        // Faulted units stay silent; otherwise the host over-issued
        // triggers — harmless but worth counting.
        if (stats_ && !faulted_)
            stats_->add("pim.triggerAfterExit");
        return;
    }

    const PimInst inst = PimInst::decode(regs_.crf(ppc_));

    if (inst.opcode == PimOpcode::Nop) {
        // Multi-cycle NOP: consumes imm0 triggers before advancing.
        if (stats_)
            stats_->add("pim.op.NOP");
        if (++nopConsumed_ >= std::max(1u, inst.imm0)) {
            nopConsumed_ = 0;
            ++ppc_;
        }
        return;
    }

    if (stats_) {
        stats_->add(std::string("pim.op.") + pimOpcodeName(inst.opcode));
        stats_->add("pim.opExec");
    }
    ++executed_;

    const unsigned s0 = effectiveIndex(inst, inst.src0Idx, inst.src0, col);
    const unsigned s1 = effectiveIndex(inst, inst.src1Idx, inst.src1, col);
    const unsigned d = effectiveIndex(inst, inst.dstIdx, inst.dst, col);

    switch (inst.opcode) {
      case PimOpcode::Mov:
      case PimOpcode::Fill: {
        LaneVector v =
            fetchOperand(inst.src0, s0, type, col, bus_data, false);
        if (inst.relu) {
            for (auto &lane : v)
                lane = fp16Relu(lane);
        }
        writeResult(inst.dst, d, col, v);
        break;
      }
      case PimOpcode::Add: {
        const LaneVector a =
            fetchOperand(inst.src0, s0, type, col, bus_data, false);
        const LaneVector b =
            fetchOperand(inst.src1, s1, type, col, bus_data, true);
        writeResult(inst.dst, d, col,
                    rowAdd(config_.batchedLanes, config_.format, a, b));
        break;
      }
      case PimOpcode::Mul: {
        const LaneVector a =
            fetchOperand(inst.src0, s0, type, col, bus_data, false);
        const LaneVector b =
            fetchOperand(inst.src1, s1, type, col, bus_data, true);
        writeResult(inst.dst, d, col,
                    rowMul(config_.batchedLanes, config_.format, a, b));
        break;
      }
      case PimOpcode::Mac: {
        // DST == SRC2: the destination register accumulates.
        const LaneVector a =
            fetchOperand(inst.src0, s0, type, col, bus_data, false);
        const LaneVector b =
            fetchOperand(inst.src1, s1, type, col, bus_data, true);
        const LaneVector acc =
            fetchOperand(inst.dst, d, type, col, bus_data, false);
        writeResult(inst.dst, d, col,
                    rowMac(config_.batchedLanes, config_.format, a, b, acc));
        break;
      }
      case PimOpcode::Mad: {
        // SRC2 comes from SRF_A at the SRC1 index (Section III-C).
        const LaneVector a =
            fetchOperand(inst.src0, s0, type, col, bus_data, false);
        const LaneVector b =
            fetchOperand(inst.src1, s1, type, col, bus_data, true);
        const unsigned addend_idx =
            inst.aam ? col % config_.srfPerFile
                     : inst.src1Idx % config_.srfPerFile;
        if (regs_.srfPoisoned(1, addend_idx)) {
            regs_.consumeSrfPoison(1, addend_idx);
            noteExposure();
        }
        const LaneVector c = broadcast(regs_.srf(1, addend_idx));
        writeResult(inst.dst, d, col,
                    rowMac(config_.batchedLanes, config_.format, a, b, c));
        break;
      }
      default:
        PIMSIM_PANIC("control opcode reached execute stage");
    }

    ++ppc_;
    // Pre-decode the next slot so zero-cycle JUMP/EXIT take effect
    // immediately (the fetch stage runs ahead of the next trigger).
    resolveControl();
}

} // namespace pimsim
