#include "pim/pim_channel.h"

#include <algorithm>

#include "common/logging.h"

namespace pimsim {

const char *
pimModeName(PimMode mode)
{
    switch (mode) {
      case PimMode::Sb:
        return "SB";
      case PimMode::Ab:
        return "AB";
      case PimMode::AbPim:
        return "AB-PIM";
    }
    return "???";
}

PimChannel::PimChannel(const PimConfig &config, PseudoChannel &pch)
    : config_(config), pch_(pch),
      conf_(PimConfMap::forRows(pch.geometry().rowsPerBank)),
      stats_("pimch")
{
    PIMSIM_ASSERT(config.unitsPerPch * 2 == pch.geometry().banksPerPch(),
                  "one PIM unit per bank pair expected");
    for (unsigned u = 0; u < config.unitsPerPch; ++u)
        units_.push_back(std::make_unique<PimUnit>(config, u, pch, &stats_));

    // Register-mapped column layout inside the config row. CRF occupies
    // the first crfEntries/8 bursts, then GRF_A, GRF_B, the two SRF
    // files and the PIM_OP_MODE register.
    const unsigned crf_cols = config.crfEntries / 8;
    grfAColBase_ = crf_cols;
    grfBColBase_ = grfAColBase_ + config.grfPerHalf;
    srfMCol_ = grfBColBase_ + config.grfPerHalf;
    srfACol_ = srfMCol_ + 1;
    opModeCol_ = srfACol_ + 1;
    PIMSIM_ASSERT(opModeCol_ < 2 * pch.geometry().colsPerRow,
                  "config space too small for the register map");

    pch_.setInterceptor(this);
}

bool
PimChannel::allUnitsHalted() const
{
    return std::all_of(units_.begin(), units_.end(),
                       [](const auto &u) { return u->halted(); });
}

bool
PimChannel::anyUnitFaulted() const
{
    return std::any_of(units_.begin(), units_.end(),
                       [](const auto &u) { return u->faulted(); });
}

std::uint64_t
PimChannel::sdcExposed() const
{
    std::uint64_t total = 0;
    for (const auto &u : units_)
        total += u->sdcExposed();
    return total;
}

void
PimChannel::onRowCommand(const Command &cmd, Cycle cycle)
{
    (void)cycle;
    if (cmd.type == CommandType::Act) {
        if (cmd.row == conf_.abmrRow)
            pending_ = Pending::Ab;
        else if (cmd.row == conf_.sbmrRow)
            pending_ = Pending::Sb;
        else
            pending_ = Pending::None;
        return;
    }

    // PRE / PREA commits a pending mode-register transition (Fig. 3).
    if (pending_ == Pending::Ab) {
        PIMSIM_ASSERT(mode_ == PimMode::Sb,
                      "ABMR sequence while already in ", pimModeName(mode_));
        PIMSIM_ASSERT(pch_.allBanksIdle(),
                      "SB->AB transition requires all rows precharged");
        mode_ = PimMode::Ab;
        pch_.setAllBankMode(true);
        stats_.add("mode.enterAb");
    } else if (pending_ == Pending::Sb) {
        PIMSIM_ASSERT(mode_ == PimMode::Ab,
                      "SBMR sequence while in ", pimModeName(mode_));
        PIMSIM_ASSERT(pch_.allBanksIdle(),
                      "AB->SB transition requires all rows precharged");
        mode_ = PimMode::Sb;
        pch_.setAllBankMode(false);
        pch_.setPimModeActive(false);
        stats_.add("mode.enterSb");
    }
    pending_ = Pending::None;
}

void
PimChannel::setOpMode(bool pim_on)
{
    if (pim_on) {
        if (config_.fastModeSwitch && mode_ == PimMode::Sb) {
            // HBM3-generation fine-grained interleaving: the register
            // write alone arms AB-PIM (no ABMR sequence required). Only
            // the config row carrying this very write may be open.
            for (unsigned b = 0; b < pch_.geometry().banksPerPch(); ++b) {
                PIMSIM_ASSERT(
                    pch_.bank(b).state == BankState::Idle ||
                        conf_.isConfigRow(pch_.bank(b).openRow),
                    "fast SB->AB-PIM requires data rows precharged");
            }
            pch_.setAllBankMode(true);
            pch_.setPimModeActive(true);
            mode_ = PimMode::AbPim;
            for (auto &u : units_)
                u->resetProgram();
            stats_.add("mode.fastEnterAbPim");
            return;
        }
        PIMSIM_ASSERT(mode_ == PimMode::Ab || mode_ == PimMode::AbPim,
                      "PIM_OP_MODE=1 requires AB mode");
        if (mode_ == PimMode::Ab) {
            mode_ = PimMode::AbPim;
            pch_.setPimModeActive(true);
            for (auto &u : units_)
                u->resetProgram();
            stats_.add("mode.enterAbPim");
        }
    } else if (mode_ == PimMode::AbPim) {
        if (config_.fastModeSwitch) {
            // Drop straight back to standard DRAM operation.
            mode_ = PimMode::Sb;
            pch_.setAllBankMode(false);
            pch_.setPimModeActive(false);
            stats_.add("mode.fastExitAbPim");
            return;
        }
        mode_ = PimMode::Ab;
        pch_.setPimModeActive(false);
        stats_.add("mode.exitAbPim");
    }
}

bool
PimChannel::handleConfigAccess(const Command &cmd, unsigned open_row,
                               Burst *rd_data)
{
    const unsigned flat = cmd.flatBank(pch_.geometry().banksPerBankGroup);
    const unsigned unit_idx =
        std::min(flat / 2, config_.unitsPerPch - 1);
    PimUnit &addressed = *units_[unit_idx];
    // Flat register-map column: configRow2 continues configRow's space.
    const unsigned col = cmd.col + (open_row == conf_.configRow2
                                        ? pch_.geometry().colsPerRow
                                        : 0);

    const unsigned crf_cols = config_.crfEntries / 8;

    if (cmd.type == CommandType::Wr) {
        // Writes broadcast to every unit: the same command reaches every
        // bank in AB mode, which is exactly how one WR loads the same
        // microkernel/scalar state everywhere.
        if (col < crf_cols) {
            for (auto &u : units_) {
                for (unsigned w = 0; w < 8; ++w) {
                    std::uint32_t word = 0;
                    for (unsigned b = 0; b < 4; ++b) {
                        word |= static_cast<std::uint32_t>(
                                    cmd.data[4 * w + b])
                                << (8 * b);
                    }
                    u->regs().setCrf(col * 8 + w, word);
                }
            }
            stats_.add("conf.crfWr");
        } else if (col >= grfAColBase_ && col < grfBColBase_) {
            const auto lanes = burstToLanes(cmd.data);
            for (auto &u : units_)
                u->regs().setGrf(0, col - grfAColBase_, lanes);
            stats_.add("conf.grfWr");
        } else if (col >= grfBColBase_ && col < srfMCol_) {
            const auto lanes = burstToLanes(cmd.data);
            for (auto &u : units_)
                u->regs().setGrf(1, col - grfBColBase_, lanes);
            stats_.add("conf.grfWr");
        } else if (col == srfMCol_) {
            for (auto &u : units_)
                u->regs().loadSrfFile(0, cmd.data);
            stats_.add("conf.srfWr");
        } else if (col == srfACol_) {
            for (auto &u : units_)
                u->regs().loadSrfFile(1, cmd.data);
            stats_.add("conf.srfWr");
        } else if (col == opModeCol_) {
            setOpMode(cmd.data[0] != 0);
        } else {
            stats_.add("conf.unmappedWr");
        }
        return true;
    }

    // Reads return the addressed unit's registers.
    Burst out{};
    if (col < crf_cols) {
        for (unsigned w = 0; w < 8; ++w) {
            const std::uint32_t word = addressed.regs().crf(col * 8 + w);
            for (unsigned b = 0; b < 4; ++b)
                out[4 * w + b] =
                    static_cast<std::uint8_t>((word >> (8 * b)) & 0xff);
        }
    } else if (col >= grfAColBase_ && col < grfBColBase_) {
        out = lanesToBurst(addressed.regs().grf(0, col - grfAColBase_));
    } else if (col >= grfBColBase_ && col < srfMCol_) {
        out = lanesToBurst(addressed.regs().grf(1, col - grfBColBase_));
    } else if (col == srfMCol_) {
        out = addressed.regs().srfFileAsBurst(0);
    } else if (col == srfACol_) {
        out = addressed.regs().srfFileAsBurst(1);
    } else if (col == opModeCol_) {
        out[0] = mode_ == PimMode::AbPim ? 1 : 0;
    }
    *rd_data = out;
    stats_.add("conf.rd");
    return true;
}

bool
PimChannel::onColumnCommand(const Command &cmd, Cycle cycle, Burst *rd_data)
{
    (void)cycle;
    const unsigned flat = cmd.flatBank(pch_.geometry().banksPerBankGroup);
    const Bank &bank = pch_.bank(flat);
    PIMSIM_ASSERT(bank.state == BankState::Active,
                  "column command to idle bank");

    if (conf_.isConfigRow(bank.openRow))
        return handleConfigAccess(cmd, bank.openRow, rd_data);

    if (mode_ != PimMode::AbPim)
        return false;

    // AB-PIM: the command triggers one instruction in every unit, in
    // lock-step. No data crosses the chip I/O boundary.
    const Burst *bus =
        cmd.type == CommandType::Wr ? &cmd.data : nullptr;
    for (auto &u : units_)
        u->trigger(cmd.type, cmd.col, bus);
    stats_.add("pim.trigger");
    if (rd_data)
        *rd_data = Burst{};
    return true;
}

} // namespace pimsim
