/**
 * @file
 * One PIM execution unit (Section IV, Fig. 4).
 *
 * A unit sits at the I/O boundary of a pair of banks (EVEN_BANK,
 * ODD_BANK), contains a 16-wide FP16 SIMD FPU, the CRF/GRF/SRF register
 * files, and a sequencer. In AB-PIM mode each DRAM column command
 * triggers exactly one non-control PIM instruction; JUMP and EXIT are
 * resolved at the fetch/decode stage for free ("zero-cycle JUMP",
 * Section III-C).
 */

#ifndef PIMSIM_PIM_PIM_UNIT_H
#define PIMSIM_PIM_PIM_UNIT_H

#include <vector>

#include "common/stats.h"
#include "dram/command.h"
#include "dram/pseudo_channel.h"
#include "pim/isa.h"
#include "pim/pim_config.h"
#include "pim/registers.h"

namespace pimsim {

/** Execution state and datapath of one PIM unit. */
class PimUnit
{
  public:
    /**
     * @param config  unit configuration (register depths, DSE flags)
     * @param index   unit index within the pCH; serves flat banks
     *                (2*index, 2*index+1)
     * @param pch     owning pseudo channel (bank state + data)
     * @param stats   shared per-channel stat group (may be nullptr)
     */
    PimUnit(const PimConfig &config, unsigned index, PseudoChannel &pch,
            StatGroup *stats);

    /** Restart the microkernel: PPC = 0, loop counters cleared. */
    void resetProgram();

    /** True once EXIT has been fetched. */
    bool halted() const { return halted_; }

    /**
     * True if the sequencer hit an illegal instruction (a corrupted CRF
     * slot). The unit halts rather than executing garbage; the fault is
     * sticky until resetProgram().
     */
    bool faulted() const { return faulted_; }

    /** Current PIM program counter. */
    unsigned ppc() const { return ppc_; }

    /** Instructions executed since the last resetProgram(). */
    std::uint64_t executedCount() const { return executed_; }

    /**
     * Ground-truth silent-data-corruption exposures: planted register-
     * file faults whose poisoned value the datapath actually consumed
     * (an overwrite before use masks the plant; an illegal-instruction
     * fault is reported, not silent — neither counts). Cumulative over
     * the unit's lifetime, so campaigns can delta across kernels.
     */
    std::uint64_t sdcExposed() const { return sdcExposed_; }

    /**
     * Execute one trigger (a column command in AB-PIM mode).
     *
     * @param type     Rd or Wr
     * @param col      column address of the command (feeds AAM indices and
     *                 bank operand addressing)
     * @param bus_data WR payload (nullptr for RD)
     */
    void trigger(CommandType type, unsigned col, const Burst *bus_data);

    PimRegisterFile &regs() { return regs_; }
    const PimRegisterFile &regs() const { return regs_; }

    unsigned evenBank() const { return evenBank_; }
    unsigned oddBank() const { return oddBank_; }

    const PimConfig &config() const { return config_; }

  private:
    /** Resolve zero-cycle control flow (JUMP/EXIT) at the current PPC. */
    void resolveControl();

    /** Fetch one 16-lane operand. */
    LaneVector fetchOperand(OperandSpace space, unsigned index,
                            CommandType type, unsigned col,
                            const Burst *bus_data, bool is_src1);

    /** Write one 16-lane result. */
    void writeResult(OperandSpace space, unsigned index, unsigned col,
                     const LaneVector &value);

    /** Effective register index under AAM. */
    unsigned effectiveIndex(const PimInst &inst, unsigned encoded,
                            OperandSpace space, unsigned col) const;

    PimConfig config_;
    unsigned evenBank_;
    unsigned oddBank_;
    PseudoChannel &pch_;
    PimRegisterFile regs_;
    StatGroup *stats_;

    /** Raise an illegal-instruction fault and halt the unit. */
    void raiseIllegalInst(std::uint32_t word);

    /** Count one consumed register-file plant (see sdcExposed()). */
    void noteExposure();

    unsigned ppc_ = 0;
    bool halted_ = false;
    bool faulted_ = false;
    unsigned nopConsumed_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t sdcExposed_ = 0;
    std::vector<int> jumpRemaining_;
};

} // namespace pimsim

#endif // PIMSIM_PIM_PIM_UNIT_H
