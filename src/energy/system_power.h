/**
 * @file
 * System-level power/energy composition (Figs. 12 and 13).
 *
 * Combines the host's phase powers (compute-busy, memory-bound-stalled,
 * PIM-command-driving, idle) with the memory subsystem's event energy to
 * produce workload energies and power-over-time traces.
 */

#ifndef PIMSIM_ENERGY_SYSTEM_POWER_H
#define PIMSIM_ENERGY_SYSTEM_POWER_H

#include <string>
#include <vector>

#include "energy/energy_model.h"
#include "stack/app_runner.h"

namespace pimsim {

/** Host package power by phase, in watts. */
struct HostPowerParams
{
    double idleW = 42.0;
    double computeW = 135.0; ///< compute-bound kernels
    /** Stalled on memory (unoptimised host kernels spend most cycles
     *  waiting; package power drops well below the compute level). */
    double memBoundW = 70.0;
    /** Driving PIM command streams: every thread group busily issuing
     *  memory requests at maximum rate (Section V-B). */
    double pimDriveW = 105.0;
    /** Framework dispatch between kernels (launch overhead windows). */
    double frameworkW = 90.0;
};

/** One workload's system energy. */
struct SystemEnergy
{
    double ns = 0.0;
    double hostJ = 0.0;
    double memoryJ = 0.0;

    double totalJ() const { return hostJ + memoryJ; }
    double avgPowerW() const { return ns > 0 ? totalJ() / ns * 1e9 : 0.0; }
};

/** A sampled power-over-time trace (Fig. 13). */
struct PowerTrace
{
    double sampleNs = 0.0;
    std::vector<double> watts;
};

/** Composes system energy from run results. */
class SystemPowerModel
{
  public:
    SystemPowerModel(const EnergyModel &memory, const HostPowerParams &host,
                     unsigned channels)
        : memory_(memory), host_(host), channels_(channels)
    {
    }

    /**
     * Energy of one end-to-end run. `pim_path` selects host phase powers
     * (PIM kernels put the host in the lightweight command-driving
     * state; host kernels run compute- or memory-bound).
     */
    SystemEnergy appEnergy(const AppRunResult &run, bool pim_path) const;

    /**
     * Build a power-over-time trace for a run with the given phase
     * schedule: a list of (duration ns, watts) segments sampled at
     * `sample_ns`.
     */
    static PowerTrace
    tracePhases(const std::vector<std::pair<double, double>> &phases,
                double sample_ns);

    /** Average memory power during a host-kernel phase, in watts. */
    double hostPhaseMemoryW(double bytes, double ns) const;

    const HostPowerParams &hostParams() const { return host_; }
    const EnergyModel &memoryModel() const { return memory_; }

  private:
    EnergyModel memory_;
    HostPowerParams host_;
    unsigned channels_;
};

} // namespace pimsim

#endif // PIMSIM_ENERGY_SYSTEM_POWER_H
