#include "energy/energy_model.h"

#include <cmath>
#include <ostream>

#include "common/logging.h"

namespace pimsim {

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &o)
{
    background += o.background;
    cell += o.cell;
    iosa += o.iosa;
    globalBus += o.globalBus;
    phy += o.phy;
    pimUnit += o.pimUnit;
    activation += o.activation;
    other += o.other;
    return *this;
}

EnergyBreakdown
EnergyBreakdown::operator*(double f) const
{
    EnergyBreakdown e = *this;
    e.background *= f;
    e.cell *= f;
    e.iosa *= f;
    e.globalBus *= f;
    e.phy *= f;
    e.pimUnit *= f;
    e.activation *= f;
    e.other *= f;
    return e;
}

std::ostream &
operator<<(std::ostream &os, const EnergyBreakdown &e)
{
    return os << "bg=" << e.background << " cell=" << e.cell
              << " iosa=" << e.iosa << " bus=" << e.globalBus
              << " phy=" << e.phy << " pim=" << e.pimUnit
              << " act=" << e.activation << " other=" << e.other
              << " total=" << e.total();
}

EnergyBreakdown
EnergyModel::channelEnergy(const ChannelActivity &a) const
{
    EnergyBreakdown e;
    e.background = params_.backgroundMwPerPch * a.elapsedNs; // mW*ns = pJ

    // External column bursts exercise the full path.
    const double ext = static_cast<double>(a.rdBursts + a.wrBursts);
    e.cell += ext * params_.cellPj;
    e.iosa += ext * params_.iosaPj;
    e.globalBus += ext * params_.globalBusPj;
    e.phy += ext * params_.phyPj;
    e.other += ext * params_.otherPj;

    // PIM bank accesses stop at the bank I/O boundary: cell + IOSA only.
    const double pim_bank =
        static_cast<double>(a.pimBankReads + a.pimBankWrites);
    e.cell += pim_bank * params_.cellPj;
    e.iosa += pim_bank * params_.iosaPj;

    // PIM execution and the residual buffer-die toggle per trigger.
    e.pimUnit += static_cast<double>(a.pimOps) * params_.pimOpPj;
    if (!params_.gateBufferIo) {
        e.phy += static_cast<double>(a.pimTriggers) *
                 params_.bufferTogglePj;
    }

    e.activation += static_cast<double>(a.acts) * params_.actPj;
    return e;
}

double
EnergyModel::averagePowerMw(const ChannelActivity &a) const
{
    if (a.elapsedNs <= 0.0)
        return 0.0;
    return channelEnergy(a).total() / a.elapsedNs; // pJ / ns = mW
}

// ---------------------------------------------------------------------
// Table I.
// ---------------------------------------------------------------------

const char *
macFormatName(MacFormat format)
{
    switch (format) {
      case MacFormat::Int16Acc48:
        return "INT16 (w/ 48-bit Acc.)";
      case MacFormat::Int8Acc48:
        return "INT8 (w/ 48-bit Acc.)";
      case MacFormat::Int8Acc32:
        return "INT8 (w/ 32-bit Acc.)";
      case MacFormat::Fp16:
        return "FP16";
      case MacFormat::Bf16:
        return "BFLOAT16";
      case MacFormat::Fp32:
        return "FP32";
    }
    return "???";
}

double
macRelativeArea(MacFormat format)
{
    // Measured silicon values, Table I.
    switch (format) {
      case MacFormat::Int16Acc48:
        return 1.0;
      case MacFormat::Int8Acc48:
        return 0.45;
      case MacFormat::Int8Acc32:
        return 0.35;
      case MacFormat::Fp16:
        return 1.32;
      case MacFormat::Bf16:
        return 1.15;
      case MacFormat::Fp32:
        return 3.96;
    }
    PIMSIM_PANIC("bad format");
}

double
macRelativeEnergy(MacFormat format)
{
    switch (format) {
      case MacFormat::Int16Acc48:
        return 1.0;
      case MacFormat::Int8Acc48:
        return 0.81;
      case MacFormat::Int8Acc32:
        return 0.77;
      case MacFormat::Fp16:
        return 1.21;
      case MacFormat::Bf16:
        return 1.04;
      case MacFormat::Fp32:
        return 1.34;
    }
    PIMSIM_PANIC("bad format");
}

std::pair<double, double>
macModelEstimate(MacFormat format)
{
    // Structural parameters: significand (multiplier input) width,
    // accumulator/adder width, exponent width.
    double sig = 0;
    double acc = 0;
    double exp = 0;
    switch (format) {
      case MacFormat::Int16Acc48:
        sig = 16;
        acc = 48;
        break;
      case MacFormat::Int8Acc48:
        sig = 8;
        acc = 48;
        break;
      case MacFormat::Int8Acc32:
        sig = 8;
        acc = 32;
        break;
      case MacFormat::Fp16:
        sig = 11;
        acc = 22;
        exp = 5;
        break;
      case MacFormat::Bf16:
        sig = 8;
        acc = 16;
        exp = 8;
        break;
      case MacFormat::Fp32:
        sig = 24;
        acc = 48;
        exp = 8;
        break;
    }

    // Area: array multiplier ~ sig^2; accumulator/adder ~ width; FP
    // formats add alignment/normalisation shifters (~ sig * log2(sig))
    // and exponent logic. Coefficients fitted to the INT rows.
    const double fp_shift =
        exp > 0 ? 4.73 * sig * std::log2(sig) + 24.1 * exp : 0.0;
    const double area = sig * sig + 1.94 * acc + fp_shift;
    const double area_ref = 16.0 * 16.0 + 1.94 * 48.0;

    // Energy: fixed clocking/register overhead + datapath terms
    // (coefficients fitted to the three INT rows, which they reproduce
    // exactly), plus exponent/normalisation switching for FP.
    const double fp_energy = exp > 0 ? 0.017 * sig + 0.026 * exp : 0.0;
    const double energy =
        0.50 + sig * 0.02375 + acc * 0.0025 + fp_energy;
    const double energy_ref = 0.50 + 16 * 0.02375 + 48 * 0.0025;

    return {area / area_ref, energy / energy_ref};
}

} // namespace pimsim
