#include "energy/system_power.h"

#include <algorithm>

namespace pimsim {

double
SystemPowerModel::hostPhaseMemoryW(double bytes, double ns) const
{
    if (ns <= 0.0)
        return 0.0;
    ChannelActivity a;
    const double bursts = bytes / kBurstBytes;
    a.rdBursts = static_cast<std::uint64_t>(bursts * 0.8);
    a.wrBursts = static_cast<std::uint64_t>(bursts * 0.2);
    // Streaming opens a fresh row every colsPerRow bursts per bank.
    a.acts = static_cast<std::uint64_t>(bursts / 32.0);
    a.elapsedNs = ns * channels_;
    return memory_.channelEnergy(a).total() / ns * 1e-3; // pJ/ns -> W
}

SystemEnergy
SystemPowerModel::appEnergy(const AppRunResult &run, bool pim_path) const
{
    SystemEnergy e;
    e.ns = run.ns;

    // ---- Host package ----
    // Host-kernel time: compute-heavy phases burn computeW; memory-bound
    // phases burn memBoundW. We weight by how much DRAM traffic the host
    // portion moved (traffic-heavy => memory-bound).
    const double host_ns = run.hostNs;
    // A host phase sustaining more than ~half of peak bandwidth
    // (~600 B/ns for the 4-stack system) counts as fully memory-bound.
    const double mem_bound_frac =
        host_ns > 0
            ? std::clamp(run.hostDramBytes / (host_ns * 600.0 + 1.0), 0.0,
                         1.0)
            : 0.0;
    const double host_kernel_w = host_ns > 0
                                     ? mem_bound_frac * host_.memBoundW +
                                           (1 - mem_bound_frac) *
                                               host_.computeW
                                     : 0.0;
    e.hostJ += host_ns * host_kernel_w * 1e-9;

    // PIM-kernel time: the host merely drives command streams.
    e.hostJ += run.pimNs * (pim_path ? host_.pimDriveW : 0.0) * 1e-9;

    // Launch gaps: the host runs framework dispatch code.
    e.hostJ += run.launchNs * host_.frameworkW * 1e-9;

    // ---- Memory subsystem ----
    ChannelActivity a;
    const double host_bursts = run.hostDramBytes / kBurstBytes;
    a.rdBursts = static_cast<std::uint64_t>(host_bursts * 0.8);
    a.wrBursts = static_cast<std::uint64_t>(host_bursts * 0.2);
    a.acts = static_cast<std::uint64_t>(host_bursts / 32.0) + run.acts;
    a.pimTriggers = run.pimTriggers;
    a.pimBankReads = run.pimBankAccesses;
    a.pimOps = run.pimOps;
    a.elapsedNs = run.ns * channels_;
    e.memoryJ = memory_.channelEnergy(a).total() * 1e-12;
    return e;
}

PowerTrace
SystemPowerModel::tracePhases(
    const std::vector<std::pair<double, double>> &phases, double sample_ns)
{
    PowerTrace trace;
    trace.sampleNs = sample_ns;
    double carry_ns = 0.0;
    double carry_j = 0.0;
    for (const auto &[dur, watts] : phases) {
        double remaining = dur;
        while (remaining > 0.0) {
            const double take = std::min(remaining, sample_ns - carry_ns);
            carry_j += take * watts * 1e-9;
            carry_ns += take;
            remaining -= take;
            if (carry_ns >= sample_ns - 1e-9) {
                trace.watts.push_back(carry_j / (sample_ns * 1e-9));
                carry_ns = 0.0;
                carry_j = 0.0;
            }
        }
    }
    if (carry_ns > 1e-9)
        trace.watts.push_back(carry_j / (carry_ns * 1e-9));
    return trace;
}

} // namespace pimsim
