/**
 * @file
 * Activity probe: turns simulator statistics into energy-model inputs.
 *
 * Snapshot the system before a phase, run it, and diff() returns the
 * aggregated event counts of the interval. For aggregated activity,
 * elapsedNs is the wall interval multiplied by the channel count, so
 * the background term integrates per-pCH standby power correctly.
 */

#ifndef PIMSIM_ENERGY_PROBE_H
#define PIMSIM_ENERGY_PROBE_H

#include <vector>

#include "energy/energy_model.h"
#include "sim/system.h"

namespace pimsim {

/** Collects activity deltas from a PimSystem. */
class ActivityProbe
{
  public:
    explicit ActivityProbe(PimSystem &system);

    /** Re-baseline at the current simulation point. */
    void snapshot();

    /** Aggregated activity across all channels since the snapshot. */
    ChannelActivity delta() const;

  private:
    struct Counters
    {
        std::uint64_t acts = 0;
        std::uint64_t rd = 0;
        std::uint64_t wr = 0;
        std::uint64_t triggers = 0;
        std::uint64_t bankReads = 0;
        std::uint64_t bankWrites = 0;
        std::uint64_t ops = 0;
    };

    Counters read() const;

    PimSystem &system_;
    Counters base_;
    Cycle baseCycle_ = 0;
};

} // namespace pimsim

#endif // PIMSIM_ENERGY_PROBE_H
