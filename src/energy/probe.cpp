#include "energy/probe.h"

namespace pimsim {

ActivityProbe::ActivityProbe(PimSystem &system) : system_(system)
{
    snapshot();
}

ActivityProbe::Counters
ActivityProbe::read() const
{
    Counters c;
    c.acts = system_.totalChannelStat("act");
    c.rd = system_.totalChannelStat("rd");
    c.wr = system_.totalChannelStat("wr");
    c.triggers = system_.totalPimStat("pim.trigger");
    c.bankReads = system_.totalPimStat("pim.bankRead");
    c.bankWrites = system_.totalPimStat("pim.bankWrite");
    c.ops = system_.totalPimStat("pim.opExec");
    return c;
}

void
ActivityProbe::snapshot()
{
    base_ = read();
    baseCycle_ = system_.now();
}

ChannelActivity
ActivityProbe::delta() const
{
    const Counters now = read();
    ChannelActivity a;
    a.acts = now.acts - base_.acts;
    a.rdBursts = now.rd - base_.rd;
    a.wrBursts = now.wr - base_.wr;
    a.pimTriggers = now.triggers - base_.triggers;
    a.pimBankReads = now.bankReads - base_.bankReads;
    a.pimBankWrites = now.bankWrites - base_.bankWrites;
    a.pimOps = now.ops - base_.ops;
    a.elapsedNs = static_cast<double>(system_.now() - baseCycle_) *
                  system_.nsPerCycle() * system_.numChannels();
    return a;
}

} // namespace pimsim
