/**
 * @file
 * Event-based DRAM + PIM energy model (Section VII-C).
 *
 * Per-event energies are calibrated so the component breakdown of a
 * back-to-back RD stream matches Fig. 11's proportions:
 *
 *  - HBM streaming reads: background ~38%, cell ~5%, IOSA/decoders ~7%,
 *    internal global I/O bus ~25%, I/O PHY ~20%, other ~5%.
 *  - PIM-HBM in AB-PIM mode activates 8 banks per tCCD_L (4x on-chip
 *    bandwidth): cell+IOSA scale 4x, the global bus and most of the PHY
 *    stop toggling, PIM FPUs add their own energy. Net: ~5.4% more
 *    power than HBM (Fig. 11), and gating the residual buffer-die I/O
 *    toggle would drop ~10% below HBM (Section VII-C).
 */

#ifndef PIMSIM_ENERGY_ENERGY_MODEL_H
#define PIMSIM_ENERGY_ENERGY_MODEL_H

#include <cstdint>
#include <iosfwd>
#include <string>

#include "dram/timing.h"

namespace pimsim {

/** Energy by component, in picojoules. */
struct EnergyBreakdown
{
    double background = 0.0; ///< standby / peripheral
    double cell = 0.0;       ///< DRAM cell array access
    double iosa = 0.0;       ///< I/O sense amps + decoders
    double globalBus = 0.0;  ///< internal global I/O bus
    double phy = 0.0;        ///< buffer-die PHY / external I/O
    double pimUnit = 0.0;    ///< PIM execution units
    double activation = 0.0; ///< ACT/PRE row energy
    double other = 0.0;

    double total() const
    {
        return background + cell + iosa + globalBus + phy + pimUnit +
               activation + other;
    }

    EnergyBreakdown &operator+=(const EnergyBreakdown &o);
    EnergyBreakdown operator*(double f) const;
};

std::ostream &operator<<(std::ostream &os, const EnergyBreakdown &e);

/** Event counts for one pseudo channel over an interval. */
struct ChannelActivity
{
    std::uint64_t acts = 0;        ///< per-bank activations
    std::uint64_t rdBursts = 0;    ///< bursts leaving the die
    std::uint64_t wrBursts = 0;    ///< bursts entering the die
    std::uint64_t pimTriggers = 0; ///< AB-PIM column commands
    std::uint64_t pimBankReads = 0;
    std::uint64_t pimBankWrites = 0;
    std::uint64_t pimOps = 0; ///< executed arithmetic/move instructions
    double elapsedNs = 0.0;
};

/** Per-event energy constants (pJ) and background power (mW per pCH). */
struct EnergyParams
{
    double backgroundMwPerPch = 228.0;

    // Per 32-byte column burst through the full external path.
    double cellPj = 50.0;
    double iosaPj = 70.0;
    double globalBusPj = 250.0;
    double phyPj = 200.0;
    double otherPj = 50.0;

    // Row energy per bank activation (ACT+PRE pair).
    double actPj = 900.0;

    // PIM-side events.
    double pimOpPj = 25.0;          ///< one 16-lane FP16 op
    double bufferTogglePj = 185.0;  ///< residual buffer-die I/O per trigger
    bool gateBufferIo = false;      ///< the ~10%-saving option (VII-C)

    /** Units active per trigger (paper config: 8 per pCH). */
    unsigned pimUnitsPerPch = 8;
};

/** Computes energy and average power from channel activity. */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyParams &params = {})
        : params_(params)
    {
    }

    /** Energy of one channel's activity over its interval. */
    EnergyBreakdown channelEnergy(const ChannelActivity &activity) const;

    /** Average power in milliwatts for an activity interval. */
    double averagePowerMw(const ChannelActivity &activity) const;

    const EnergyParams &params() const { return params_; }
    EnergyParams &params() { return params_; }

  private:
    EnergyParams params_;
};

// ---------------------------------------------------------------------
// Table I: MAC unit area and energy in a 20 nm DRAM process.
// ---------------------------------------------------------------------

/** Number formats compared in Table I. */
enum class MacFormat
{
    Int16Acc48,
    Int8Acc48,
    Int8Acc32,
    Fp16,
    Bf16,
    Fp32,
};

const char *macFormatName(MacFormat format);

/** Relative area of a MAC unit (INT16 w/ 48-bit accumulator = 1). */
double macRelativeArea(MacFormat format);
/** Relative energy/op of a MAC unit (INT16 w/ 48-bit accumulator = 1). */
double macRelativeEnergy(MacFormat format);

/**
 * Structural estimate behind Table I: multiplier area scales with the
 * square of the significand width, the adder/accumulator linearly with
 * accumulator width, plus exponent-handling overhead for FP formats.
 * Returns (area, energy) normalised to INT16. The published constants
 * (macRelativeArea/Energy) are the measured silicon values; the
 * estimate is checked against them for ordering and rough magnitude.
 */
std::pair<double, double> macModelEstimate(MacFormat format);

} // namespace pimsim

#endif // PIMSIM_ENERGY_ENERGY_MODEL_H
