/**
 * @file
 * End-to-end application execution (the paper's Fig. 10/12 experiments).
 *
 * The runner plays an AppSpec's layers through either the host baseline
 * (HostModel on an HBM system) or the PIM path (PIM-eligible layers run
 * through PIM BLAS on the cycle simulator; everything else stays on the
 * host). Per-kernel launch overheads and encoder/decoder call batching
 * follow Section VII-B's discussion of why GNMT gains less than DS2.
 */

#ifndef PIMSIM_STACK_APP_RUNNER_H
#define PIMSIM_STACK_APP_RUNNER_H

#include <map>
#include <string>

#include "host/host_model.h"
#include "stack/blas.h"
#include "stack/workloads.h"

namespace pimsim {

class TraceSession;

/** Result of one end-to-end application run. */
struct AppRunResult
{
    double ns = 0.0;
    double hostNs = 0.0;      ///< time spent in host-executed layers
    double pimNs = 0.0;       ///< time spent in PIM-executed kernels
    double launchNs = 0.0;    ///< kernel-launch overhead included in ns
    std::uint64_t kernelLaunches = 0;
    double avgLlcMissRate = 0.0; ///< access-weighted host LLC miss rate

    // Energy-model inputs accumulated over the run.
    double hostDramBytes = 0.0;     ///< host-path DRAM traffic
    std::uint64_t acts = 0;         ///< bank activations (PIM kernels)
    std::uint64_t pimTriggers = 0;  ///< AB-PIM column commands
    std::uint64_t pimBankAccesses = 0;
    std::uint64_t pimOps = 0;

    // Reliability outcomes aggregated over all PIM kernels in the run.
    std::uint64_t pimRetries = 0;       ///< kernel re-executions
    std::uint64_t hostFallbacks = 0;    ///< kernels recomputed on the host
    std::uint64_t eccCorrected = 0;     ///< ECC single-bit corrections
    std::uint64_t eccUncorrectable = 0; ///< uncorrectable ECC events
};

/** Executes applications and microbenchmarks on one system. */
class AppRunner
{
  public:
    /**
     * @param host  host model bound to the system (always required)
     * @param blas  PIM BLAS bound to the same system, or nullptr for
     *              the HBM baseline
     */
    AppRunner(HostModel &host, PimBlas *blas);

    /** Run one application end to end at the given batch size. */
    AppRunResult runApp(const AppSpec &app, unsigned batch);

    /** Run one Table VI microbenchmark; returns time in ns. */
    AppRunResult runMicro(const MicroSpec &micro, unsigned batch);

    bool usesPim() const { return blas_ != nullptr; }

    /**
     * Record application/layer spans on the runtime track of a Chrome-
     * trace session (nullptr disables). Successive runs append on a
     * monotonically advancing virtual timeline.
     */
    void setTrace(TraceSession *session) { trace_ = session; }

  private:
    /** Timed PIM GEMV for a shape, memoised (weights are resident). */
    BlasTiming pimGemv(unsigned m, unsigned n);
    /** Timed PIM element-wise op of a length, memoised. */
    BlasTiming pimElementwise(MicroKind kind, std::uint64_t elements);

    void runLayer(const LayerSpec &layer, unsigned batch,
                  AppRunResult &acc);

    HostModel &host_;
    PimBlas *blas_;
    TraceSession *trace_ = nullptr;
    /** Virtual-time cursor for the runtime track (ns). */
    double traceCursorNs_ = 0.0;

    std::map<std::pair<unsigned, unsigned>, BlasTiming> gemvCache_;
    std::map<std::pair<int, std::uint64_t>, BlasTiming> elemCache_;
};

} // namespace pimsim

#endif // PIMSIM_STACK_APP_RUNNER_H
