#include "stack/framework.h"

#include <cmath>

#include "common/logging.h"
#include "stack/reference.h"

namespace pimsim {

namespace {

Fp16
sigmoidFp16(Fp16 v)
{
    return Fp16(1.0f / (1.0f + std::exp(-v.toFloat())));
}

Fp16
tanhFp16(Fp16 v)
{
    return Fp16(std::tanh(v.toFloat()));
}

/**
 * Host-side LSTM cell update given the fused gate pre-activations.
 * Shared by the PIM path and the reference so both are bit-identical.
 */
void
lstmCellUpdate(const Fp16Vector &gates, const Fp16Vector &bias,
               unsigned hidden, Fp16Vector &c, Fp16Vector &h)
{
    for (unsigned j = 0; j < hidden; ++j) {
        const Fp16 zi = fp16Add(gates[j], bias[j]);
        const Fp16 zf = fp16Add(gates[hidden + j], bias[hidden + j]);
        const Fp16 zg =
            fp16Add(gates[2 * hidden + j], bias[2 * hidden + j]);
        const Fp16 zo =
            fp16Add(gates[3 * hidden + j], bias[3 * hidden + j]);
        const Fp16 i = sigmoidFp16(zi);
        const Fp16 f = sigmoidFp16(zf);
        const Fp16 g = tanhFp16(zg);
        const Fp16 o = sigmoidFp16(zo);
        c[j] = fp16Add(fp16Mul(f, c[j]), fp16Mul(i, g));
        h[j] = fp16Mul(o, tanhFp16(c[j]));
    }
}

Fp16Vector
concat(const Fp16Vector &x, const Fp16Vector &h)
{
    Fp16Vector xh;
    xh.reserve(x.size() + h.size());
    xh.insert(xh.end(), x.begin(), x.end());
    xh.insert(xh.end(), h.begin(), h.end());
    return xh;
}

} // namespace

void
PimOps::account(const BlasTiming &t)
{
    profile_.pimNs += t.totalNs();
    profile_.pimKernelCalls += 1;
}

Fp16Vector
PimOps::add(const Fp16Vector &a, const Fp16Vector &b)
{
    Fp16Vector out;
    account(blas_.add(a, b, out));
    return out;
}

Fp16Vector
PimOps::mul(const Fp16Vector &a, const Fp16Vector &b)
{
    Fp16Vector out;
    account(blas_.mul(a, b, out));
    return out;
}

Fp16Vector
PimOps::relu(const Fp16Vector &a)
{
    Fp16Vector out;
    account(blas_.relu(a, out));
    return out;
}

Fp16Vector
PimOps::bn(const Fp16Vector &a, const Fp16Vector &gamma,
           const Fp16Vector &beta)
{
    Fp16Vector out;
    account(blas_.bn(a, gamma, beta, out));
    return out;
}

Fp16Vector
PimOps::gemv(const Fp16Vector &w, unsigned m, unsigned n,
             const Fp16Vector &x)
{
    Fp16Vector y;
    account(blas_.gemv(w, m, n, x, y));
    return y;
}

std::vector<Fp16Vector>
PimOps::lstm(const LstmWeights &weights,
             const std::vector<Fp16Vector> &inputs)
{
    const unsigned hidden = weights.hidden;
    const unsigned input = weights.input;
    const unsigned m = 4 * hidden;
    const unsigned n = input + hidden;
    PIMSIM_ASSERT(weights.w.size() == std::size_t{m} * n,
                  "LSTM weight shape mismatch");
    PIMSIM_ASSERT(weights.bias.size() == m, "LSTM bias shape mismatch");

    std::vector<Fp16Vector> outputs;
    Fp16Vector h(hidden);
    Fp16Vector c(hidden);
    for (const auto &x : inputs) {
        PIMSIM_ASSERT(x.size() == input, "LSTM input length mismatch");
        // The fused gate GEMV runs on PIM; the cell update on the host.
        Fp16Vector gates;
        account(blas_.gemv(weights.w, m, n, concat(x, h), gates));
        lstmCellUpdate(gates, weights.bias, hidden, c, h);
        outputs.push_back(h);
    }
    return outputs;
}

std::vector<Fp16Vector>
refLstm(const LstmWeights &weights, const std::vector<Fp16Vector> &inputs)
{
    const unsigned hidden = weights.hidden;
    const unsigned m = 4 * hidden;
    const unsigned n = weights.input + hidden;

    std::vector<Fp16Vector> outputs;
    Fp16Vector h(hidden);
    Fp16Vector c(hidden);
    for (const auto &x : inputs) {
        const Fp16Vector gates = refGemv(weights.w, m, n, concat(x, h));
        lstmCellUpdate(gates, weights.bias, hidden, c, h);
        outputs.push_back(h);
    }
    return outputs;
}

} // namespace pimsim
