/**
 * @file
 * Framework-level "PIM custom ops" (Section V-A, Fig. 6/7).
 *
 * The paper implements six TensorFlow custom ops — ADD, MUL, Relu, LSTM,
 * GEMV, and BN — that call straight into PIM BLAS (the "PIM-direct
 * execution path"). This module is the equivalent surface for our stack:
 * a small framework-facing API over PimBlas that application code (the
 * examples) uses without knowing anything about banks or microkernels.
 *
 * The LSTM op runs a full, functionally exact LSTM forward pass: the
 * fused gate GEMV executes on the simulated PIM hardware; activations
 * and the cell update run on the host (float math, rounded to FP16),
 * like the paper's stack.
 */

#ifndef PIMSIM_STACK_FRAMEWORK_H
#define PIMSIM_STACK_FRAMEWORK_H

#include <cstdint>
#include <vector>

#include "stack/blas.h"

namespace pimsim {

/** Weights of one LSTM layer (fused gate matrix). */
struct LstmWeights
{
    /** Gate matrix W of shape (4H x (In + H)); rows ordered i,f,g,o. */
    Fp16Vector w;
    /** Gate bias of length 4H. */
    Fp16Vector bias;
    unsigned hidden = 0;
    unsigned input = 0;
};

/** Output of an op: result plus accumulated device timing. */
struct OpProfile
{
    double pimNs = 0.0;
    double hostNs = 0.0;
    std::uint64_t pimKernelCalls = 0;

    double totalNs() const { return pimNs + hostNs; }
};

/** The six PIM custom ops. */
class PimOps
{
  public:
    explicit PimOps(PimSystem &system) : blas_(system) {}

    /** Element-wise c = a + b. */
    Fp16Vector add(const Fp16Vector &a, const Fp16Vector &b);
    /** Element-wise c = a * b. */
    Fp16Vector mul(const Fp16Vector &a, const Fp16Vector &b);
    /** Element-wise ReLU. */
    Fp16Vector relu(const Fp16Vector &a);
    /** Batch norm (8 scalar groups, see PimBlas::bn). */
    Fp16Vector bn(const Fp16Vector &a, const Fp16Vector &gamma,
                  const Fp16Vector &beta);
    /** y = W x. */
    Fp16Vector gemv(const Fp16Vector &w, unsigned m, unsigned n,
                    const Fp16Vector &x);

    /**
     * Full LSTM forward pass over a sequence.
     *
     * @param weights fused gate weights
     * @param inputs  sequence of input vectors (each of length In)
     * @return the sequence of hidden states (each of length H)
     */
    std::vector<Fp16Vector> lstm(const LstmWeights &weights,
                                 const std::vector<Fp16Vector> &inputs);

    /** Timing accumulated since construction / resetProfile(). */
    const OpProfile &profile() const { return profile_; }
    void resetProfile() { profile_ = OpProfile{}; }

    PimBlas &blas() { return blas_; }

  private:
    void account(const BlasTiming &t);

    PimBlas blas_;
    OpProfile profile_;
};

/** Reference (host-only) LSTM forward pass for verification. */
std::vector<Fp16Vector> refLstm(const LstmWeights &weights,
                                const std::vector<Fp16Vector> &inputs);

} // namespace pimsim

#endif // PIMSIM_STACK_FRAMEWORK_H
