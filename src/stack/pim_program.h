/**
 * @file
 * PIM kernel programs and their execution against the simulated system.
 *
 * A PimProgram is, per channel, the ordered list of memory requests the
 * host's thread groups emit (Section V-B: one thread group per channel,
 * lock-step, barriers between ordered windows). The runner executes all
 * channels concurrently with fence semantics: after a step marked
 * `fenceAfter`, the channel stalls until every outstanding request has
 * completed plus the fence overhead, modelling the per-8-command barriers
 * that Section VII-B identifies as the main PIM overhead.
 */

#ifndef PIMSIM_STACK_PIM_PROGRAM_H
#define PIMSIM_STACK_PIM_PROGRAM_H

#include <cstdint>
#include <vector>

#include "mem/request.h"
#include "sim/system.h"

namespace pimsim {

/** One host-issued request plus an optional trailing barrier. */
struct PimStep
{
    MemRequest request;
    bool fenceAfter = false;
};

/** One channel's ordered request stream. */
using ChannelProgram = std::vector<PimStep>;

/** A whole-kernel program across every channel. */
struct PimProgram
{
    std::vector<ChannelProgram> perChannel;

    explicit PimProgram(unsigned channels = 0) : perChannel(channels) {}

    std::uint64_t totalSteps() const
    {
        std::uint64_t total = 0;
        for (const auto &p : perChannel)
            total += p.size();
        return total;
    }

    std::uint64_t totalFences() const
    {
        std::uint64_t total = 0;
        for (const auto &p : perChannel)
            for (const auto &s : p)
                total += s.fenceAfter ? 1 : 0;
        return total;
    }
};

/** Result of running a program. */
struct PimRunResult
{
    Cycle cycles = 0;          ///< start-to-drain bus cycles
    double ns = 0.0;           ///< same, in nanoseconds
    std::uint64_t commands = 0;
    std::uint64_t fences = 0;
    /** Read responses per channel, in completion order. */
    std::vector<std::vector<MemResponse>> reads;
};

/** Execute a program on the system; advances the system clock. */
PimRunResult runPimProgram(PimSystem &system, const PimProgram &program,
                           bool collect_reads = false);

/**
 * Execute the same channel program on the first `channels` channels
 * (the common case: every channel runs an identical command structure,
 * differing only in resident bank data). Avoids materialising N copies.
 */
PimRunResult runPimProgramReplicated(PimSystem &system,
                                     const ChannelProgram &program,
                                     unsigned channels,
                                     bool collect_reads = false);

/** Helpers for building channel programs. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(ChannelProgram &program) : program_(program) {}

    void activate(unsigned row, unsigned bg = 0, unsigned bank = 0);
    void precharge(unsigned bg = 0, unsigned bank = 0);
    void prechargeAll();
    void read(unsigned row, unsigned col, unsigned bg = 0,
              unsigned bank = 0);
    void write(unsigned row, unsigned col, const Burst &data,
               unsigned bg = 0, unsigned bank = 0);
    /** Mark a barrier after the most recent step. */
    void fence();

  private:
    void push(const MemRequest &request);

    ChannelProgram &program_;
    std::uint64_t nextId_ = 0;
};

} // namespace pimsim

#endif // PIMSIM_STACK_PIM_PROGRAM_H
