/**
 * @file
 * Evaluation workloads: the Table VI microbenchmarks and the five
 * end-to-end applications of Section VII-A, described as layer graphs.
 */

#ifndef PIMSIM_STACK_WORKLOADS_H
#define PIMSIM_STACK_WORKLOADS_H

#include <cstdint>
#include <string>
#include <vector>

namespace pimsim {

/** Microbenchmark kinds. */
enum class MicroKind
{
    Gemv, ///< vector-matrix multiplication
    Add,  ///< element-wise addition (residual connections)
    Bn,   ///< batch normalisation (Fig. 14 only)
};

/** One Table VI microbenchmark. */
struct MicroSpec
{
    std::string name;
    MicroKind kind;
    unsigned m = 0;            ///< GEMV rows
    unsigned n = 0;            ///< GEMV cols
    std::uint64_t elements = 0; ///< element-wise length
};

/** GEMV1-4 and ADD1-4 exactly as in Table VI. */
std::vector<MicroSpec> table6Microbenchmarks();

/** The BN microbenchmarks used by Fig. 14 (same sizes as ADD). */
std::vector<MicroSpec> bnMicrobenchmarks();

// ---------------------------------------------------------------------
// Application layer graphs (Section VII-A).
// ---------------------------------------------------------------------

/** One layer invocation pattern. */
struct LayerSpec
{
    enum class Kind
    {
        Conv,      ///< compute-bound convolution (host only)
        Lstm,      ///< LSTM layer: gate GEMVs + element-wise ops
        Fc,        ///< fully connected (GEMV)
        Residual,  ///< element-wise addition (skip connection)
        BatchNorm, ///< element-wise scale+shift
    };

    Kind kind;
    /** Conv: MAC count (per sample). */
    double flops = 0.0;
    /** Lstm/Fc: weight shape. Lstm uses hidden/input sizes. */
    unsigned hidden = 0;
    unsigned input = 0;
    /** Lstm: timesteps; others: invocation count. */
    unsigned steps = 1;
    /**
     * Lstm: inputs to all steps available up-front (encoder-style), so
     * the input-side GEMM batches across steps into a single kernel
     * call. Decoder-style layers (GNMT) must launch per step.
     */
    bool inputsAvailable = true;
    /** Element-wise length per invocation. */
    std::uint64_t elements = 0;
    /** True if the paper's system accelerates this layer on PIM. */
    bool pimEligible = true;
};

/** An application: ordered layers plus bookkeeping. */
struct AppSpec
{
    std::string name;
    std::vector<LayerSpec> layers;
};

/** Baidu DeepSpeech2: 2 conv + 6 bidirectional LSTM + FC (VII-A). */
AppSpec ds2App();
/** Google RNN-Transducer (MLPerf variant): 5+2 LSTM + 2 FC joint. */
AppSpec rnntApp();
/** GNMT: 8 LSTM encoders + 8 LSTM decoders + attention. */
AppSpec gnmtApp();
/** AlexNet: 5 conv + 3 FC. */
AppSpec alexnetApp();
/** ResNet-50: convolution-dominated; PIM not applied (Fig. 10). */
AppSpec resnet50App();

/** All five applications in the paper's presentation order. */
std::vector<AppSpec> allApps();

} // namespace pimsim

#endif // PIMSIM_STACK_WORKLOADS_H
