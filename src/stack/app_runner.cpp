#include "stack/app_runner.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "common/trace.h"
#include "stack/reference.h"

namespace pimsim {


namespace {

const char *
layerKindName(LayerSpec::Kind kind)
{
    switch (kind) {
      case LayerSpec::Kind::Conv:
        return "conv";
      case LayerSpec::Kind::Lstm:
        return "lstm";
      case LayerSpec::Kind::Fc:
        return "fc";
      case LayerSpec::Kind::Residual:
        return "residual";
      case LayerSpec::Kind::BatchNorm:
        return "bn";
    }
    return "?";
}

/** Accumulate a kernel's device activity, repeated `times`, into acc. */
void
accumulatePimActivity(AppRunResult &acc, const BlasTiming &t, double times)
{
    acc.acts += static_cast<std::uint64_t>(t.acts * times);
    acc.pimTriggers += static_cast<std::uint64_t>(t.pimTriggers * times);
    acc.pimBankAccesses +=
        static_cast<std::uint64_t>(t.pimBankAccesses * times);
    acc.pimOps += static_cast<std::uint64_t>(t.pimOps * times);
    // Reliability outcomes are per-call facts, not rates: count them once
    // per distinct kernel execution rather than scaling by repetitions
    // (memoised replays of a timing do not re-run the device).
    acc.pimRetries += t.retries;
    acc.hostFallbacks += t.hostFallback ? 1 : 0;
    acc.eccCorrected += t.eccCorrected;
    acc.eccUncorrectable += t.eccUncorrectable;
}

} // namespace

AppRunner::AppRunner(HostModel &host, PimBlas *blas)
    : host_(host), blas_(blas)
{
}

BlasTiming
AppRunner::pimGemv(unsigned m, unsigned n)
{
    const auto key = std::make_pair(m, n);
    const auto it = gemvCache_.find(key);
    if (it != gemvCache_.end())
        return it->second;

    // Execute the real command-level kernel once with random data; the
    // timing of subsequent identical shapes is identical (deterministic
    // latency is the PIM architecture's core property).
    Rng rng(0x9e3779b9u ^ (std::uint64_t{m} << 20) ^ n);
    Fp16Vector w(std::size_t{m} * n);
    for (auto &v : w)
        v = rng.nextFp16();
    Fp16Vector x(n);
    for (auto &v : x)
        v = rng.nextFp16();
    Fp16Vector y;
    const BlasTiming t = blas_->gemv(w, m, n, x, y);
    gemvCache_[key] = t;
    return t;
}

BlasTiming
AppRunner::pimElementwise(MicroKind kind, std::uint64_t elements)
{
    const auto key =
        std::make_pair(static_cast<int>(kind), elements);
    const auto it = elemCache_.find(key);
    if (it != elemCache_.end())
        return it->second;

    Rng rng(0xc0ffee ^ elements);
    Fp16Vector a(elements);
    for (auto &v : a)
        v = rng.nextFp16();
    Fp16Vector out;
    BlasTiming t;
    if (kind == MicroKind::Add) {
        Fp16Vector b(elements);
        for (auto &v : b)
            v = rng.nextFp16();
        t = blas_->add(a, b, out);
    } else {
        Fp16Vector gamma(8), beta(8);
        for (auto &v : gamma)
            v = rng.nextFp16();
        for (auto &v : beta)
            v = rng.nextFp16();
        t = blas_->bn(a, gamma, beta, out);
    }
    elemCache_[key] = t;
    return t;
}

void
AppRunner::runLayer(const LayerSpec &layer, unsigned batch,
                    AppRunResult &acc)
{
    const double launch_ns = host_.config().kernelLaunchNs;
    const bool pim = usesPim() && layer.pimEligible;

    switch (layer.kind) {
      case LayerSpec::Kind::Conv: {
        // Compute-bound: identical on both systems.
        const auto r = host_.computeBound(layer.flops * batch);
        acc.hostDramBytes += layer.flops * batch * 0.005; // high reuse
        acc.hostNs += r.ns;
        acc.ns += r.ns;
        acc.launchNs += launch_ns;
        acc.kernelLaunches += 1;
        acc.avgLlcMissRate += r.llcMissRate;
        break;
      }

      case LayerSpec::Kind::Lstm: {
        // Fused gate GEMV per step: gates = W [x_t ; h_{t-1}] with
        // W of shape (4H x (In + H)).
        const unsigned m = 4 * layer.hidden;
        const unsigned n = layer.input + layer.hidden;
        // Per-step host-side gate math (sigmoid/tanh + eltwise): small,
        // cache-resident.
        const double gate_flops = 10.0 * layer.hidden;

        if (pim) {
            const BlasTiming g = pimGemv(m, n);
            // The recurrent dependence forces one kernel invocation per
            // step; encoder-style layers with all inputs available let
            // the runtime pre-stage command buffers and amortise the
            // host-side launch across steps (Section VII-B's
            // encoder/decoder asymmetry).
            // Decoder-style layers launch several PIM kernels per step
            // (gate GEMV, attention score/context GEMVs, output sync)
            // and cannot pre-stage command buffers; encoder-style layers
            // amortise dispatch across pre-staged steps (Section VII-B).
            const double launches =
                layer.inputsAvailable
                    ? std::max(1.0, layer.steps / 8.0)
                    : static_cast<double>(layer.steps) * 12.0;
            const double kernel_ns =
                static_cast<double>(layer.steps) * batch * g.totalNs();
            const double gate_ns =
                layer.steps * batch *
                (gate_flops /
                 (host_.config().peakFlops() *
                  host_.config().computeEfficiency) *
                 1e9);
            acc.pimNs += kernel_ns + gate_ns;
            acc.launchNs += launches * launch_ns;
            acc.kernelLaunches += static_cast<std::uint64_t>(launches);
            acc.ns += kernel_ns + gate_ns + launches * launch_ns;
            accumulatePimActivity(acc, g,
                                  static_cast<double>(layer.steps) * batch);
        } else {
            const auto r = host_.gemv(m, n, batch);
            const double step_ns = r.ns; // includes one launch
            acc.hostDramBytes += 2.0 * m * n * layer.steps;
            acc.hostNs += layer.steps * step_ns;
            acc.ns += layer.steps * step_ns;
            acc.launchNs += layer.steps * launch_ns;
            acc.kernelLaunches += layer.steps;
            acc.avgLlcMissRate += r.llcMissRate;
        }
        break;
      }

      case LayerSpec::Kind::Fc: {
        const unsigned m = layer.hidden;
        const unsigned n = layer.input;
        if (pim) {
            const BlasTiming g = pimGemv(m, n);
            const double launches =
                layer.inputsAvailable
                    ? std::max(1.0, layer.steps / 8.0)
                    : static_cast<double>(layer.steps) * 12.0;
            const double kernel_ns =
                static_cast<double>(layer.steps) * batch * g.totalNs();
            acc.pimNs += kernel_ns;
            acc.launchNs += launches * launch_ns;
            acc.kernelLaunches += static_cast<std::uint64_t>(launches);
            acc.ns += kernel_ns + launches * launch_ns;
            accumulatePimActivity(acc, g,
                                  static_cast<double>(layer.steps) * batch);
        } else {
            const auto r = host_.gemv(m, n, batch);
            acc.hostDramBytes += 2.0 * m * n * layer.steps;
            acc.hostNs += layer.steps * r.ns;
            acc.ns += layer.steps * r.ns;
            acc.launchNs += layer.steps * launch_ns;
            acc.kernelLaunches += layer.steps;
            acc.avgLlcMissRate += r.llcMissRate;
        }
        break;
      }

      case LayerSpec::Kind::Residual:
      case LayerSpec::Kind::BatchNorm: {
        const std::uint64_t elems = layer.elements * batch;
        if (pim) {
            const BlasTiming t = pimElementwise(
                layer.kind == LayerSpec::Kind::Residual ? MicroKind::Add
                                                        : MicroKind::Bn,
                elems);
            acc.pimNs += layer.steps * t.totalNs();
            acc.launchNs += layer.steps * launch_ns;
            acc.kernelLaunches += layer.steps;
            acc.ns += layer.steps * (t.totalNs() + launch_ns);
            accumulatePimActivity(acc, t, layer.steps);
        } else {
            const std::uint64_t bytes_in =
                2 * elems *
                (layer.kind == LayerSpec::Kind::Residual ? 2 : 1);
            const auto r = host_.elementwise(bytes_in, 2 * elems);
            acc.hostDramBytes +=
                static_cast<double>(bytes_in + 2 * elems) * layer.steps;
            acc.hostNs += layer.steps * r.ns;
            acc.ns += layer.steps * r.ns;
            acc.launchNs += layer.steps * launch_ns;
            acc.kernelLaunches += layer.steps;
            acc.avgLlcMissRate += r.llcMissRate;
        }
        break;
      }
    }
}

AppRunResult
AppRunner::runApp(const AppSpec &app, unsigned batch)
{
    AppRunResult acc;
    const double app_start = traceCursorNs_;
    unsigned host_layers = 0;
    unsigned index = 0;
    for (const auto &layer : app.layers) {
        const double before = acc.avgLlcMissRate;
        const double ns_before = acc.ns;
        runLayer(layer, batch, acc);
        if (acc.avgLlcMissRate != before)
            ++host_layers;
        if (trace_) {
            const bool pim = usesPim() && layer.pimEligible;
            trace_->span(kTracePidRuntime, 0,
                         std::string(layerKindName(layer.kind)) + "[" +
                             std::to_string(index) + "]",
                         pim ? "layer-pim" : "layer-host",
                         app_start + ns_before, acc.ns - ns_before);
        }
        ++index;
    }
    if (host_layers)
        acc.avgLlcMissRate /= host_layers;
    if (trace_) {
        trace_->setProcessName(kTracePidRuntime, "runtime");
        trace_->setThreadName(kTracePidRuntime, 0, "app-layers");
        trace_->span(kTracePidRuntime, 0,
                     app.name + " b" + std::to_string(batch), "app",
                     app_start, acc.ns);
        traceCursorNs_ = app_start + acc.ns;
    }
    return acc;
}

AppRunResult
AppRunner::runMicro(const MicroSpec &micro, unsigned batch)
{
    AppRunResult acc;
    const double launch_ns = host_.config().kernelLaunchNs;
    switch (micro.kind) {
      case MicroKind::Gemv: {
        if (usesPim()) {
            const BlasTiming t = pimGemv(micro.m, micro.n);
            acc.pimNs = batch * t.totalNs();
            acc.ns = acc.pimNs + launch_ns;
            accumulatePimActivity(acc, t, batch);
        } else {
            const auto r = host_.gemv(micro.m, micro.n, batch);
            acc.hostDramBytes += 2.0 * micro.m * micro.n;
            acc.hostNs = r.ns;
            acc.ns = r.ns;
            acc.avgLlcMissRate = r.llcMissRate;
        }
        acc.kernelLaunches = 1;
        acc.launchNs = launch_ns;
        break;
      }
      case MicroKind::Add:
      case MicroKind::Bn: {
        const std::uint64_t elems = micro.elements * batch;
        if (usesPim()) {
            const BlasTiming t = pimElementwise(micro.kind, elems);
            acc.pimNs = t.totalNs();
            acc.ns = acc.pimNs + launch_ns;
            accumulatePimActivity(acc, t, 1.0);
        } else {
            const std::uint64_t in_bytes =
                2 * elems * (micro.kind == MicroKind::Add ? 2 : 1);
            const auto r = host_.elementwise(in_bytes, 2 * elems);
            acc.hostDramBytes += static_cast<double>(in_bytes + 2 * elems);
            acc.hostNs = r.ns;
            acc.ns = r.ns;
            acc.avgLlcMissRate = r.llcMissRate;
        }
        acc.kernelLaunches = 1;
        acc.launchNs = launch_ns;
        break;
      }
    }
    if (trace_) {
        trace_->setProcessName(kTracePidRuntime, "runtime");
        trace_->setThreadName(kTracePidRuntime, 0, "app-layers");
        trace_->span(kTracePidRuntime, 0,
                     micro.name + " b" + std::to_string(batch), "micro",
                     traceCursorNs_, acc.ns);
        traceCursorNs_ += acc.ns;
    }
    return acc;
}

} // namespace pimsim
