#include "stack/pim_program.h"

#include <algorithm>

#include "common/logging.h"

namespace pimsim {

void
ProgramBuilder::push(const MemRequest &request)
{
    MemRequest r = request;
    r.id = nextId_++;
    r.ordered = true;
    program_.push_back(PimStep{r, false});
}

void
ProgramBuilder::activate(unsigned row, unsigned bg, unsigned bank)
{
    MemRequest r;
    r.type = RequestType::Activate;
    r.coord.bankGroup = bg;
    r.coord.bank = bank;
    r.coord.row = row;
    push(r);
}

void
ProgramBuilder::precharge(unsigned bg, unsigned bank)
{
    MemRequest r;
    r.type = RequestType::Precharge;
    r.coord.bankGroup = bg;
    r.coord.bank = bank;
    push(r);
}

void
ProgramBuilder::prechargeAll()
{
    MemRequest r;
    r.type = RequestType::PrechargeAll;
    push(r);
}

void
ProgramBuilder::read(unsigned row, unsigned col, unsigned bg, unsigned bank)
{
    MemRequest r;
    r.type = RequestType::Read;
    r.coord.bankGroup = bg;
    r.coord.bank = bank;
    r.coord.row = row;
    r.coord.col = col;
    push(r);
}

void
ProgramBuilder::write(unsigned row, unsigned col, const Burst &data,
                      unsigned bg, unsigned bank)
{
    MemRequest r;
    r.type = RequestType::Write;
    r.coord.bankGroup = bg;
    r.coord.bank = bank;
    r.coord.row = row;
    r.coord.col = col;
    r.data = data;
    push(r);
}

void
ProgramBuilder::fence()
{
    PIMSIM_ASSERT(!program_.empty(), "fence on empty program");
    program_.back().fenceAfter = true;
}

namespace {

/** Per-channel issue state during a run. */
struct ChannelState
{
    std::size_t cursor = 0;        ///< next step to enqueue
    std::uint64_t inflight = 0;    ///< enqueued, not yet completed
    bool fencePending = false;     ///< stop enqueueing until drained
    Cycle fenceRelease = kNoCycle; ///< cycle the fence lifts
};

} // namespace

static PimRunResult
runChannelPrograms(PimSystem &system,
                   const std::vector<const ChannelProgram *> &programs,
                   bool collect_reads)
{
    const unsigned channels = static_cast<unsigned>(programs.size());
    PIMSIM_ASSERT(channels <= system.numChannels(),
                  "program spans more channels than the system has");

    const Cycle start = system.now();
    const Cycle fence_cycles =
        system.nsToCycles(system.config().host.fenceNs);

    PimRunResult result;
    for (const auto *p : programs) {
        result.commands += p->size();
        for (const auto &s : *p)
            result.fences += s.fenceAfter ? 1 : 0;
    }
    if (collect_reads)
        result.reads.resize(channels);

    std::vector<ChannelState> state(channels);

    auto all_done = [&]() {
        for (unsigned ch = 0; ch < channels; ++ch) {
            const auto &s = state[ch];
            if (s.cursor < programs[ch]->size() || s.inflight > 0 ||
                s.fencePending) {
                return false;
            }
        }
        return true;
    };

    while (!all_done()) {
        // Drain completions and release fences.
        for (unsigned ch = 0; ch < channels; ++ch) {
            auto &s = state[ch];
            auto responses = system.drain(ch);
            for (auto &r : responses) {
                PIMSIM_ASSERT(s.inflight > 0, "stray response");
                --s.inflight;
                if (collect_reads && r.type == RequestType::Read)
                    result.reads[ch].push_back(std::move(r));
            }
            if (s.fencePending) {
                if (s.fenceRelease == kNoCycle && s.inflight == 0)
                    s.fenceRelease = system.now() + fence_cycles;
                if (s.fenceRelease != kNoCycle &&
                    system.now() >= s.fenceRelease) {
                    s.fencePending = false;
                    s.fenceRelease = kNoCycle;
                }
            }
        }

        // Enqueue as much as backpressure and fences allow.
        for (unsigned ch = 0; ch < channels; ++ch) {
            auto &s = state[ch];
            const auto &prog = *programs[ch];
            while (!s.fencePending && s.cursor < prog.size()) {
                const PimStep &step = prog[s.cursor];
                if (!system.tryEnqueue(ch, step.request))
                    break;
                ++s.cursor;
                ++s.inflight;
                if (step.fenceAfter)
                    s.fencePending = true;
            }
        }

        if (system.allIdle()) {
            // Everything in flight has completed; we are waiting on a
            // fence release (or the final drain). Jump the clock.
            Cycle target = kNoCycle;
            for (const auto &s : state) {
                if (s.fencePending && s.fenceRelease != kNoCycle)
                    target = std::min(target, s.fenceRelease);
            }
            if (target == kNoCycle) {
                // Completion cycles can trail the controllers going idle
                // by the read latency; nudge time forward.
                bool anything_left = false;
                for (const auto &s : state)
                    anything_left |= s.inflight > 0;
                if (!anything_left)
                    continue; // cursors blocked on fences resolved above
                system.advance(1);
            } else {
                system.advance(target - system.now());
            }
        } else {
            system.step();
        }
    }

    result.cycles = system.now() - start;
    result.ns = static_cast<double>(result.cycles) * system.nsPerCycle();
    return result;
}

PimRunResult
runPimProgram(PimSystem &system, const PimProgram &program,
              bool collect_reads)
{
    std::vector<const ChannelProgram *> programs;
    programs.reserve(program.perChannel.size());
    for (const auto &p : program.perChannel)
        programs.push_back(&p);
    return runChannelPrograms(system, programs, collect_reads);
}

PimRunResult
runPimProgramReplicated(PimSystem &system, const ChannelProgram &program,
                        unsigned channels, bool collect_reads)
{
    std::vector<const ChannelProgram *> programs(channels, &program);
    return runChannelPrograms(system, programs, collect_reads);
}

} // namespace pimsim
