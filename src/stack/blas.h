/**
 * @file
 * PIM BLAS (Section V-A): the user-facing linear-algebra library.
 *
 * Each function places operands in the PIM region with a PIM-friendly
 * layout (Section VIII, Fig. 15), generates the per-channel microkernel
 * and command program, runs it on the simulated system (cycle-accurate,
 * functionally exact), and returns both the numerical result and the
 * measured execution time. Users call gemv()/add()/... without knowing
 * anything about banks, rows or PIM instructions — exactly the role the
 * paper assigns to PIM BLAS on top of the PIM runtime.
 */

#ifndef PIMSIM_STACK_BLAS_H
#define PIMSIM_STACK_BLAS_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/fp16.h"
#include "dram/datastore.h"
#include "pim/isa.h"
#include "stack/driver.h"
#include "stack/pim_program.h"

namespace pimsim {

class SdcMonitor;
class TraceSession;

/** Timing and traffic results of one PIM BLAS call. */
struct BlasTiming
{
    double ns = 0.0;            ///< kernel execution time (command stream)
    double readbackNs = 0.0;    ///< host result readback / reduction time
    std::uint64_t commands = 0; ///< DRAM column/row requests issued
    std::uint64_t fences = 0;   ///< barriers executed

    // Device activity during the kernel (energy-model inputs).
    std::uint64_t acts = 0;          ///< bank activations
    std::uint64_t pimTriggers = 0;   ///< AB-PIM column commands
    std::uint64_t pimBankAccesses = 0;
    std::uint64_t pimOps = 0;        ///< executed PIM instructions

    // Reliability outcome of the call.
    unsigned retries = 0;        ///< PIM re-executions after reported errors
    bool hostFallback = false;   ///< result came from the host golden path
    std::uint64_t eccCorrected = 0;     ///< ECC corrections observed
    std::uint64_t eccUncorrectable = 0; ///< uncorrectable ECC events seen

    // ABFT outcome of the call (GEMV with setAbft(true) only).
    std::uint64_t abftChecks = 0;     ///< checksum-verified (ch, unit) tiles
    std::uint64_t abftMismatches = 0; ///< tiles whose checksum band tripped
    std::uint64_t abftUnverifiable = 0; ///< tiles with saturated partials
    std::uint64_t sdcConfirmed = 0;   ///< tiles golden-confirmed corrupted
    std::uint64_t sdcFalseAlarms = 0; ///< tripped tiles golden found clean
    double abftNs = 0.0;              ///< checksum verification time

    double totalNs() const { return ns + readbackNs + abftNs; }
};

/** Vector of FP16 values (host-side view of a tensor). */
using Fp16Vector = std::vector<Fp16>;

/**
 * The PIM BLAS library bound to one PIM-HBM system.
 *
 * Calls are synchronous: on return the result vector holds the values
 * the PIM units produced (read back from simulated DRAM), and timing
 * reflects the full command-level execution including mode transitions,
 * CRF setup and fences.
 */
class PimBlas
{
  public:
    explicit PimBlas(PimSystem &system);

    /** out[i] = a[i] + b[i] (element-wise; Fig. 15 layout). */
    BlasTiming add(const Fp16Vector &a, const Fp16Vector &b, Fp16Vector &out);

    /** out[i] = a[i] * b[i] (element-wise). */
    BlasTiming mul(const Fp16Vector &a, const Fp16Vector &b, Fp16Vector &out);

    /** out[i] = max(a[i], 0) via MOV(ReLU). */
    BlasTiming relu(const Fp16Vector &a, Fp16Vector &out);

    /**
     * Batch-norm inference: out[i] = a[i] * gamma[g] + beta[g] where g
     * cycles through groups of 8 scalars held in SRF_M/SRF_A (MAD path).
     */
    BlasTiming bn(const Fp16Vector &a, const Fp16Vector &gamma,
                  const Fp16Vector &beta, Fp16Vector &out);

    /**
     * General matrix-vector product: y = W x with W row-major (M x N).
     * Weights are resident in the PIM region (preloaded untimed, like an
     * inference-time weight map); x streams in over the write bus; y
     * partial sums are reduced on the host.
     */
    BlasTiming gemv(const Fp16Vector &w, unsigned m, unsigned n,
                    const Fp16Vector &x, Fp16Vector &y);

    PimDriver &driver() { return driver_; }
    PimSystem &system() { return system_; }

    /**
     * Disable the per-window barriers (the Section VII-B study of a
     * controller that guarantees DRAM command order in PIM mode). The
     * prologue/epilogue synchronisation fences are kept.
     */
    void setUseFences(bool use) { useFences_ = use; }
    bool useFences() const { return useFences_; }

    /**
     * PIM re-execution budget when a kernel's output is suspect (a unit
     * faulted on a corrupted CRF, or uncorrectable ECC errors were
     * reported during execution). After this many retries the call
     * recomputes on the host golden path and flags hostFallback.
     */
    void setMaxRetries(unsigned retries) { maxRetries_ = retries; }
    unsigned maxRetries() const { return maxRetries_; }

    /**
     * Record each BLAS call as a kernel span on the runtime track of a
     * Chrome-trace session (nullptr disables). Spans sit on the
     * system's real device clock, so they line up with the per-channel
     * command spans.
     */
    void setTrace(TraceSession *session) { trace_ = session; }

    /**
     * Enable algorithm-based fault tolerance on GEMV: every (channel,
     * unit) tile's output sum is verified against the tile's checksum
     * row dotted with x inside an fp16-derived tolerance band. A tripped
     * tile is re-run on the host golden path to confirm; confirmed SDCs
     * replace the result with the golden values (the call never returns
     * a silently wrong result beyond the band) and are attributed to
     * their (channel, unit) at the attached SdcMonitor.
     */
    void setAbft(bool on) { abft_ = on; }
    bool abft() const { return abft_; }

    /** Attribution sink for verified tile outcomes (nullptr detaches;
     *  not owned, must outlive the BLAS instance or be detached). */
    void setSdcMonitor(SdcMonitor *monitor) { sdcMonitor_ = monitor; }

  private:
    /** Emit a kernel span [start_ns, now) if tracing is on. */
    void traceKernel(const std::string &name, double start_ns);
    /** Element-wise kernels share one engine (op selects the ALU). */
    BlasTiming elementwise(PimOpcode op, bool relu_move, const Fp16Vector &a,
                           const Fp16Vector *b, Fp16Vector &out);

    /** Common program prologue: SB -> AB, load CRF/SRF, PIM_OP_MODE=1. */
    void appendPrologue(ProgramBuilder &builder,
                        const std::vector<PimInst> &microkernel,
                        const Burst *srf_m, const Burst *srf_a);

    /** Common epilogue: PIM_OP_MODE=0, AB -> SB. */
    void appendEpilogue(ProgramBuilder &builder);

    /** Host golden computation for an element-wise call (fallback). */
    void elementwiseGolden(PimOpcode op, bool relu_move, const Fp16Vector &a,
                           const Fp16Vector *b, Fp16Vector &out) const;

    /** True if any channel's PIM logic reports a faulted unit. */
    bool anyUnitFaulted() const;

    /**
     * ABFT verification of a GEMV result: per-tile checksum compare,
     * golden confirmation of tripped tiles, correction of confirmed
     * SDCs in `y`, outcome attribution at the SdcMonitor.
     */
    void abftVerifyGemv(const Fp16Vector &w, unsigned m, unsigned n,
                        const Fp16Vector &x, Fp16Vector &y,
                        unsigned blocks, BlasTiming &timing);

    PimSystem &system_;
    PimDriver driver_;
    bool useFences_ = true;
    unsigned maxRetries_ = 2;
    bool abft_ = false;
    SdcMonitor *sdcMonitor_ = nullptr;
    TraceSession *trace_ = nullptr;

    /** SRF file payloads staged for the next kernel prologue (BN). */
    std::optional<Burst> srfM_;
    std::optional<Burst> srfA_;

    // Cached channel-0 PIM layout (identical on every channel).
    unsigned configRow_;
    unsigned abmrRow_;
    unsigned sbmrRow_;
};

} // namespace pimsim

#endif // PIMSIM_STACK_BLAS_H
