#include "stack/blas.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/logging.h"
#include "common/trace.h"
#include "energy/probe.h"
#include "pim/pim_channel.h"
#include "reliability/sdc_monitor.h"
#include "stack/reference.h"

namespace pimsim {

namespace {

/** Pack CRF instruction words into 32-byte config bursts (8 words each). */
std::vector<Burst>
packCrf(const std::vector<PimInst> &insts)
{
    std::vector<Burst> bursts(divCeil(insts.size(), 8), Burst{});
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const std::uint32_t word = insts[i].encode();
        Burst &b = bursts[i / 8];
        const std::size_t off = (i % 8) * 4;
        for (unsigned byte = 0; byte < 4; ++byte)
            b[off + byte] =
                static_cast<std::uint8_t>((word >> (8 * byte)) & 0xff);
    }
    return bursts;
}

/** Pack up to 16 scalars into one SRF-file burst. */
Burst
packSrf(const std::vector<Fp16> &values)
{
    Burst b{};
    for (std::size_t i = 0; i < values.size() && 2 * i + 1 < b.size(); ++i) {
        b[2 * i] = static_cast<std::uint8_t>(values[i].bits() & 0xff);
        b[2 * i + 1] = static_cast<std::uint8_t>(values[i].bits() >> 8);
    }
    return b;
}

/** Slice 16 FP16 values (zero-padded) into a burst. */
Burst
sliceBurst(const Fp16Vector &v, std::size_t start)
{
    Burst b{};
    for (std::size_t lane = 0; lane < kSimdLanes; ++lane) {
        const std::size_t idx = start + lane;
        if (idx < v.size()) {
            const Fp16Bits bits = v[idx].bits();
            b[2 * lane] = static_cast<std::uint8_t>(bits & 0xff);
            b[2 * lane + 1] = static_cast<std::uint8_t>(bits >> 8);
        }
    }
    return b;
}

/** Extract 16 FP16 lanes from a burst. */
void
unpackBurst(const Burst &b, std::size_t start, Fp16Vector &out)
{
    for (std::size_t lane = 0; lane < kSimdLanes; ++lane) {
        const std::size_t idx = start + lane;
        if (idx < out.size()) {
            out[idx] = Fp16::fromBits(static_cast<Fp16Bits>(
                b[2 * lane] | (static_cast<unsigned>(b[2 * lane + 1]) << 8)));
        }
    }
}

/** Burst of a single constant byte value in byte 0. */
Burst
flagBurst(std::uint8_t value)
{
    Burst b{};
    b[0] = value;
    return b;
}

} // namespace

bool
PimBlas::anyUnitFaulted() const
{
    for (unsigned ch = 0; ch < system_.numChannels(); ++ch) {
        const PimChannel *pim = system_.controller(ch).pim();
        if (pim && pim->anyUnitFaulted())
            return true;
    }
    return false;
}

void
PimBlas::elementwiseGolden(PimOpcode op, bool relu_move, const Fp16Vector &a,
                           const Fp16Vector *b, Fp16Vector &out) const
{
    if (op == PimOpcode::Add && b) {
        out = refAdd(a, *b);
    } else if (op == PimOpcode::Mul && b) {
        out = refMul(a, *b);
    } else if (op == PimOpcode::Mad) {
        // Recover the scalar groups from the staged SRF payloads.
        PIMSIM_ASSERT(srfM_ && srfA_, "BN fallback without SRF payloads");
        const LaneVector gm = burstToLanes(*srfM_);
        const LaneVector bt = burstToLanes(*srfA_);
        Fp16Vector gamma(8), beta(8);
        for (unsigned i = 0; i < 8; ++i) {
            gamma[i] = gm[i];
            beta[i] = bt[i];
        }
        const unsigned slots =
            system_.numChannels() * system_.config().pim.unitsPerPch;
        out = refBn(a, gamma, beta, slots);
    } else {
        out = relu_move ? refRelu(a) : a;
    }
}

PimBlas::PimBlas(PimSystem &system) : system_(system), driver_(system)
{
    PIMSIM_ASSERT(system.config().withPim(),
                  "PimBlas requires a PIM-HBM system");
    const auto conf =
        PimConfMap::forRows(system.config().geometry.rowsPerBank);
    configRow_ = conf.configRow;
    abmrRow_ = conf.abmrRow;
    sbmrRow_ = conf.sbmrRow;
}

void
PimBlas::appendPrologue(ProgramBuilder &builder,
                        const std::vector<PimInst> &microkernel,
                        const Burst *srf_m, const Burst *srf_a)
{
    PimChannel *pim = system_.controller(0).pim();
    PIMSIM_ASSERT(pim != nullptr, "no PIM logic attached");
    PIMSIM_ASSERT(microkernel.size() <= pim->config().crfEntries,
                  "microkernel exceeds CRF: ", microkernel.size());

    // Quiesce: any rows left open by preceding (host) traffic must be
    // closed before the mode transition (Fig. 3's entry condition).
    builder.prechargeAll();
    if (!pim->config().fastModeSwitch) {
        // SB -> AB: ACT + PRE to the ABMR row (Fig. 3).
        builder.activate(abmrRow_);
        builder.precharge();
        builder.fence();
    }

    // Load the microkernel and scalar registers through the config rows
    // (the controller opens the rows on demand).
    auto write_cfg = [&](unsigned flat_col, const Burst &data) {
        const auto [row, col] = pim->configAddr(flat_col);
        builder.write(row, col, data);
    };
    const auto bursts = packCrf(microkernel);
    for (unsigned i = 0; i < bursts.size(); ++i)
        write_cfg(i, bursts[i]);
    if (srf_m)
        write_cfg(pim->srfMCol(), *srf_m);
    if (srf_a)
        write_cfg(pim->srfACol(), *srf_a);

    // Arm AB-PIM and close the config row before data streaming.
    write_cfg(pim->opModeCol(), flagBurst(1));
    builder.prechargeAll();
    builder.fence();
}

void
PimBlas::appendEpilogue(ProgramBuilder &builder)
{
    PimChannel *pim = system_.controller(0).pim();
    builder.prechargeAll();
    builder.fence();
    const auto [op_row, op_col] = pim->configAddr(pim->opModeCol());
    builder.write(op_row, op_col, flagBurst(0));
    builder.prechargeAll();
    builder.fence();
    if (!pim->config().fastModeSwitch) {
        // AB -> SB: ACT + PRE to the SBMR row.
        builder.activate(sbmrRow_);
        builder.precharge();
        builder.fence();
    }
}

BlasTiming
PimBlas::elementwise(PimOpcode op, bool relu_move, const Fp16Vector &a,
                     const Fp16Vector *b, Fp16Vector &out)
{
    PIMSIM_ASSERT(b == nullptr || b->size() == a.size(),
                  "operand length mismatch");
    out.assign(a.size(), Fp16());
    if (a.empty())
        return {};

    // BLAS calls are self-contained: operands are staged fresh each call,
    // so the row allocator restarts and rows are reused across calls.
    driver_.reset();

    const unsigned channels = system_.numChannels();
    const unsigned units = system_.config().pim.unitsPerPch;
    const unsigned window = system_.config().pim.aamWindow();
    const unsigned cols_per_group = 8;
    const unsigned groups_per_row = 2; // input cols 0..15, outputs 16..31
    // The output columns sit 16 above the inputs; AAM indices only line
    // up when 16 is a multiple of the GRF depth.
    PIMSIM_ASSERT(16 % system_.config().pim.grfPerHalf == 0,
                  "element-wise layout requires a GRF depth of 8 or 16");

    // Chunk q (16 elements) -> (row, colgroup*8+col, unit, channel) with
    // channel fastest so short vectors still use every channel.
    const std::uint64_t chunks = divCeil(a.size(), kSimdLanes);
    const std::uint64_t chunks_per_group =
        std::uint64_t{channels} * units * cols_per_group;
    const std::uint64_t groups = divCeil(chunks, chunks_per_group);
    const unsigned rows =
        static_cast<unsigned>(divCeil(groups, groups_per_row));

    BlasTiming timing;
    PimRowBlock block;
    if (driver_.allocRows(rows, block) != PimStatus::Ok) {
        PIMSIM_WARN("element-wise kernel cannot allocate ", rows,
                    " PIM rows (free ", driver_.freeRows(),
                    "); computing on the host");
        elementwiseGolden(op, relu_move, a, b, out);
        timing.hostFallback = true;
        return timing;
    }

    auto place = [&](std::uint64_t q) {
        struct Loc
        {
            unsigned ch, unit, row, col;
        };
        Loc loc;
        loc.ch = static_cast<unsigned>(q % channels);
        std::uint64_t rest = q / channels;
        loc.unit = static_cast<unsigned>(rest % units);
        rest /= units;
        const unsigned group = static_cast<unsigned>(rest / cols_per_group);
        loc.col = static_cast<unsigned>((group % groups_per_row) * 8 +
                                        rest % cols_per_group);
        loc.row = block.firstRow + group / groups_per_row;
        return loc;
    };

    // Microkernel. AAM indices walk the GRF with the column address.
    const unsigned total_groups =
        static_cast<unsigned>(groups_per_row * rows);
    std::vector<PimInst> kernel;
    const bool two_ops = b != nullptr;
    if (two_ops && system_.config().pim.dse.twoBankAccess) {
        // 2BA variant: one trigger reads both banks (Fig. 14).
        kernel = {
            PimInst::add(OperandSpace::GrfA, 0, OperandSpace::EvenBank, 0,
                         OperandSpace::OddBank, 0, /*aam=*/true),
            PimInst::jump(1, 8),
            PimInst::mov(OperandSpace::EvenBank, 0, OperandSpace::GrfA, 0,
                         false, /*aam=*/true),
            PimInst::jump(1, 8),
            PimInst::jump(4, total_groups),
            PimInst::exit(),
        };
        if (op == PimOpcode::Mul)
            kernel[0].opcode = PimOpcode::Mul;
    } else if (two_ops) {
        PimInst alu =
            op == PimOpcode::Add
                ? PimInst::add(OperandSpace::GrfA, 0, OperandSpace::GrfA, 0,
                               OperandSpace::OddBank, 0, true)
                : PimInst::mul(OperandSpace::GrfA, 0, OperandSpace::GrfA, 0,
                               OperandSpace::OddBank, 0, true);
        kernel = {
            PimInst::fill(OperandSpace::GrfA, 0, OperandSpace::EvenBank, 0,
                          true),
            PimInst::jump(1, 8),
            alu,
            PimInst::jump(1, 8),
            PimInst::mov(OperandSpace::EvenBank, 0, OperandSpace::GrfA, 0,
                         false, true),
            PimInst::jump(1, 8),
            PimInst::jump(6, total_groups),
            PimInst::exit(),
        };
    } else if (op == PimOpcode::Mad) {
        // Batch-norm: MAD streams the input once (Fig. 14's BN kernel).
        kernel = {
            PimInst::mad(OperandSpace::GrfA, 0, OperandSpace::EvenBank, 0,
                         OperandSpace::SrfM, 0, true),
            PimInst::jump(1, 8),
            PimInst::mov(OperandSpace::EvenBank, 0, OperandSpace::GrfA, 0,
                         false, true),
            PimInst::jump(1, 8),
            PimInst::jump(4, total_groups),
            PimInst::exit(),
        };
    } else {
        // ReLU data movement.
        kernel = {
            PimInst::fill(OperandSpace::GrfA, 0, OperandSpace::EvenBank, 0,
                          true),
            PimInst::jump(1, 8),
            PimInst::mov(OperandSpace::EvenBank, 0, OperandSpace::GrfA, 0,
                         relu_move, true),
            PimInst::jump(1, 8),
            PimInst::jump(4, total_groups),
            PimInst::exit(),
        };
    }

    // Per-channel command stream (identical structure on every channel).
    ChannelProgram prog;
    ProgramBuilder builder(prog);
    appendPrologue(builder, kernel, srfM_ ? &*srfM_ : nullptr,
                   srfA_ ? &*srfA_ : nullptr);

    unsigned since_fence = 0;
    auto emit = [&](bool is_write, unsigned row, unsigned col) {
        if (is_write)
            builder.write(row, col, Burst{});
        else
            builder.read(row, col);
        if (++since_fence == window) {
            if (useFences_)
                builder.fence();
            since_fence = 0;
        }
    };

    const bool two_bank = two_ops && system_.config().pim.dse.twoBankAccess;
    for (unsigned g = 0; g < total_groups; ++g) {
        const unsigned row = block.firstRow + g / groups_per_row;
        const unsigned base = (g % groups_per_row) * 8;
        if (two_ops && !two_bank) {
            for (unsigned j = 0; j < 8; ++j)
                emit(false, row, base + j); // FILL from even bank
            for (unsigned j = 0; j < 8; ++j)
                emit(false, row, base + j); // ALU with odd bank
        } else {
            for (unsigned j = 0; j < 8; ++j)
                emit(false, row, base + j); // single-input ALU / 2BA
        }
        for (unsigned j = 0; j < 8; ++j)
            emit(true, row, 16 + base + j); // MOV result to even bank
    }
    if (since_fence)
        builder.fence();
    appendEpilogue(builder);

    // Execute, retry on reported errors, fall back to the host when the
    // retry budget is spent (the Section VIII recovery policy).
    const std::uint64_t corr0 = system_.errorLog().corrected();
    const std::uint64_t uc_start = system_.errorLog().uncorrectable();
    for (unsigned attempt = 0; attempt <= maxRetries_; ++attempt) {
        const std::uint64_t uc0 = system_.errorLog().uncorrectable();

        // (Re)stage the operands. A retry rewrites them, which repairs
        // any transient corruption the region accumulated; stuck-at
        // defects survive the rewrite and keep the attempt failing.
        for (std::uint64_t q = 0; q < chunks; ++q) {
            const auto loc = place(q);
            driver_.preload(loc.ch, 2 * loc.unit, loc.row, loc.col,
                            sliceBurst(a, q * kSimdLanes));
            if (b) {
                driver_.preload(loc.ch, 2 * loc.unit + 1, loc.row, loc.col,
                                sliceBurst(*b, q * kSimdLanes));
            }
        }

        ActivityProbe probe(system_);
        const PimRunResult run =
            runPimProgramReplicated(system_, prog, channels);
        const ChannelActivity activity = probe.delta();
        timing.ns += run.ns;
        timing.commands += run.commands;
        timing.fences += run.fences;
        timing.acts += activity.acts;
        timing.pimTriggers += activity.pimTriggers;
        timing.pimBankAccesses +=
            activity.pimBankReads + activity.pimBankWrites;
        timing.pimOps += activity.pimOps;

        // Functional readback (the result stays resident for the next
        // layer; reading it back is verification, not timed kernel
        // work). The read passes through ECC, so result corruption that
        // happened after the kernel is detected here and lands in the
        // error log like any other demand access.
        for (std::uint64_t q = 0; q < chunks; ++q) {
            const auto loc = place(q);
            const Burst result =
                driver_.peek(loc.ch, 2 * loc.unit, loc.row, 16 + loc.col);
            unpackBurst(result, q * kSimdLanes, out);
        }

        const bool faulted = anyUnitFaulted();
        const bool new_uc = system_.errorLog().uncorrectable() > uc0;
        if (!faulted && !new_uc) {
            timing.eccCorrected = system_.errorLog().corrected() - corr0;
            timing.eccUncorrectable =
                system_.errorLog().uncorrectable() - uc_start;
            return timing;
        }
        if (attempt < maxRetries_) {
            ++timing.retries;
            PIMSIM_WARN("element-wise PIM kernel reported ",
                        faulted ? "a faulted unit"
                                : "uncorrectable ECC errors",
                        "; retry ", timing.retries, "/", maxRetries_);
        }
    }

    PIMSIM_WARN("element-wise PIM kernel still failing after ",
                maxRetries_, " retries; falling back to host execution");
    elementwiseGolden(op, relu_move, a, b, out);
    timing.hostFallback = true;
    timing.eccCorrected = system_.errorLog().corrected() - corr0;
    timing.eccUncorrectable =
        system_.errorLog().uncorrectable() - uc_start;
    return timing;
}

void
PimBlas::traceKernel(const std::string &name, double start_ns)
{
    if (!trace_)
        return;
    trace_->setProcessName(kTracePidRuntime, "runtime");
    trace_->setThreadName(kTracePidRuntime, 1, "pim-kernels");
    trace_->span(kTracePidRuntime, 1, name, "blas", start_ns,
                 system_.nowNs() - start_ns);
}

BlasTiming
PimBlas::add(const Fp16Vector &a, const Fp16Vector &b, Fp16Vector &out)
{
    srfM_.reset();
    srfA_.reset();
    const double start = system_.nowNs();
    const BlasTiming t = elementwise(PimOpcode::Add, false, a, &b, out);
    traceKernel("blas.add n" + std::to_string(a.size()), start);
    return t;
}

BlasTiming
PimBlas::mul(const Fp16Vector &a, const Fp16Vector &b, Fp16Vector &out)
{
    srfM_.reset();
    srfA_.reset();
    const double start = system_.nowNs();
    const BlasTiming t = elementwise(PimOpcode::Mul, false, a, &b, out);
    traceKernel("blas.mul n" + std::to_string(a.size()), start);
    return t;
}

BlasTiming
PimBlas::relu(const Fp16Vector &a, Fp16Vector &out)
{
    srfM_.reset();
    srfA_.reset();
    const double start = system_.nowNs();
    const BlasTiming t = elementwise(PimOpcode::Mov, true, a, nullptr, out);
    traceKernel("blas.relu n" + std::to_string(a.size()), start);
    return t;
}

BlasTiming
PimBlas::bn(const Fp16Vector &a, const Fp16Vector &gamma,
            const Fp16Vector &beta, Fp16Vector &out)
{
    PIMSIM_ASSERT(gamma.size() == 8 && beta.size() == 8,
                  "bn expects 8 scalar groups (replicate smaller sets)");
    srfM_ = packSrf(gamma);
    srfA_ = packSrf(beta);
    const double start = system_.nowNs();
    const BlasTiming t = elementwise(PimOpcode::Mad, false, a, nullptr, out);
    traceKernel("blas.bn n" + std::to_string(a.size()), start);
    return t;
}

BlasTiming
PimBlas::gemv(const Fp16Vector &w, unsigned m, unsigned n,
              const Fp16Vector &x, Fp16Vector &y)
{
    PIMSIM_ASSERT(w.size() == std::size_t{m} * n, "W shape mismatch");
    PIMSIM_ASSERT(x.size() == n, "x length mismatch");
    y.assign(m, Fp16());
    if (m == 0 || n == 0)
        return {};
    const double start = system_.nowNs();
    const std::string span_name =
        "blas.gemv m" + std::to_string(m) + " n" + std::to_string(n);

    driver_.reset();

    const unsigned channels = system_.numChannels();
    const unsigned units = system_.config().pim.unitsPerPch;
    const unsigned window = system_.config().pim.aamWindow();
    const unsigned slots = channels * units; // unit-pairs system-wide
    const bool srw = system_.config().pim.dse.simultaneousRdWr;
    PIMSIM_ASSERT(system_.config().pim.grfPerHalf >= 8,
                  "the GEMV microkernel needs >= 8 GRF registers per half");

    // Padded shapes: blocks of 128 inputs, passes of 2 rows per slot.
    const unsigned blocks = static_cast<unsigned>(divCeil(n, 128));
    const unsigned passes =
        static_cast<unsigned>(divCeil(m, std::uint64_t{2} * slots));

    // W rows per pass: each block holds 8 bursts per bank at one
    // 8-column window; 4 blocks fit a 32-column row.
    const unsigned w_rows_per_pass = divCeil(blocks, 4);
    const unsigned out_rows = divCeil(passes, 32u);

    BlasTiming timing;
    PimRowBlock wBlock;
    PimRowBlock outBlock;
    if (driver_.allocRows(passes * w_rows_per_pass, wBlock) !=
            PimStatus::Ok ||
        driver_.allocRows(out_rows, outBlock) != PimStatus::Ok) {
        PIMSIM_WARN("GEMV cannot allocate ",
                    passes * w_rows_per_pass + out_rows, " PIM rows (free ",
                    driver_.freeRows(), "); computing on the host");
        y = refGemv(w, m, n, x);
        timing.hostFallback = true;
        traceKernel(span_name, start);
        return timing;
    }

    // ---- Functional preload of W ----
    // Global output row m' = 2 * (p * slots + slot) + k, slot = ch*U + u,
    // k = 0 (even bank) / 1 (odd bank). Block nb occupies columns
    // (nb % 4) * 8 .. +7 of W row (wBase + p*w_rows_per_pass + nb/4).
    auto preloadW = [&]() {
        for (unsigned p = 0; p < passes; ++p) {
            for (unsigned ch = 0; ch < channels; ++ch) {
                for (unsigned u = 0; u < units; ++u) {
                    const unsigned slot = ch * units + u;
                    for (unsigned k = 0; k < 2; ++k) {
                        const std::uint64_t mm =
                            2ull * (std::uint64_t{p} * slots + slot) + k;
                        if (mm >= m)
                            continue;
                        for (unsigned nb = 0; nb < blocks; ++nb) {
                            const unsigned row = wBlock.firstRow +
                                                 p * w_rows_per_pass +
                                                 nb / 4;
                            for (unsigned j = 0; j < 8; ++j) {
                                const std::uint64_t col_start =
                                    std::uint64_t{nb} * 128 + j * 16;
                                Burst burst{};
                                for (unsigned lane = 0; lane < kSimdLanes;
                                     ++lane) {
                                    const std::uint64_t idx =
                                        col_start + lane;
                                    if (idx < n) {
                                        const Fp16Bits bits =
                                            w[mm * n + idx].bits();
                                        burst[2 * lane] = static_cast<
                                            std::uint8_t>(bits & 0xff);
                                        burst[2 * lane + 1] =
                                            static_cast<std::uint8_t>(
                                                bits >> 8);
                                    }
                                }
                                driver_.preload(ch, 2 * u + k, row,
                                                (nb % 4) * 8 + j, burst);
                            }
                        }
                    }
                }
            }
        }
    };

    // ---- Microkernel ----
    std::vector<PimInst> kernel;
    if (srw) {
        // SRW: each WR delivers the x chunk on the bus while reading the
        // W burst from the bank in the same trigger (Fig. 14).
        for (unsigned k = 0; k < 2; ++k) {
            kernel.push_back(PimInst::mac(
                OperandSpace::GrfB, k, OperandSpace::EvenBank, 0,
                k == 0 ? OperandSpace::EvenBank : OperandSpace::OddBank, 0));
            kernel.push_back(PimInst::jump(1, 8));
        }
        kernel.push_back(PimInst::jump(4, blocks));
    } else {
        kernel.push_back(PimInst::fill(OperandSpace::GrfA, 0,
                                       OperandSpace::EvenBank, 0,
                                       /*aam=*/true));
        kernel.push_back(PimInst::jump(1, 8));
        for (unsigned k = 0; k < 2; ++k) {
            for (unsigned j = 0; j < 8; ++j) {
                kernel.push_back(PimInst::mac(
                    OperandSpace::GrfB, k,
                    k == 0 ? OperandSpace::EvenBank : OperandSpace::OddBank,
                    0, OperandSpace::GrfA, j));
            }
        }
        kernel.push_back(PimInst::jump(18, blocks));
    }
    // Store the two accumulators and clear them for the next pass.
    kernel.push_back(PimInst::mov(OperandSpace::EvenBank, 0,
                                  OperandSpace::GrfB, 0));
    kernel.push_back(PimInst::mov(OperandSpace::GrfB, 0, OperandSpace::SrfA,
                                  0));
    kernel.push_back(PimInst::mov(OperandSpace::OddBank, 0,
                                  OperandSpace::GrfB, 1));
    kernel.push_back(PimInst::mov(OperandSpace::GrfB, 1, OperandSpace::SrfA,
                                  0));
    const unsigned loop_back = static_cast<unsigned>(kernel.size());
    kernel.push_back(PimInst::jump(loop_back, passes));
    kernel.push_back(PimInst::exit());

    // SRF_A[0] = 0 clears accumulators between passes.
    const Burst zero_srf{};

    // ---- Command stream (identical on every channel) ----
    ChannelProgram prog;
    ProgramBuilder builder(prog);
    appendPrologue(builder, kernel, nullptr, &zero_srf);

    unsigned since_fence = 0;
    auto fence_tick = [&]() {
        if (++since_fence == window) {
            if (useFences_)
                builder.fence();
            since_fence = 0;
        }
    };

    for (unsigned p = 0; p < passes; ++p) {
        for (unsigned nb = 0; nb < blocks; ++nb) {
            const unsigned row = wBlock.firstRow + p * w_rows_per_pass +
                                 nb / 4;
            const unsigned base = (nb % 4) * 8;
            if (srw) {
                for (unsigned k = 0; k < 2; ++k) {
                    for (unsigned j = 0; j < 8; ++j) {
                        builder.write(
                            row, base + j,
                            sliceBurst(x, std::uint64_t{nb} * 128 + j * 16));
                        fence_tick();
                    }
                }
            } else {
                // x loads use columns 0..7 of the open row so the AAM
                // index (col % grfPerHalf) equals j for any GRF depth.
                for (unsigned j = 0; j < 8; ++j) {
                    builder.write(
                        row, j,
                        sliceBurst(x, std::uint64_t{nb} * 128 + j * 16));
                    fence_tick();
                }
                for (unsigned k = 0; k < 2; ++k) {
                    for (unsigned j = 0; j < 8; ++j) {
                        builder.read(row, base + j);
                        fence_tick();
                    }
                }
            }
        }
        // Store + clear accumulators at the pass's output burst.
        const unsigned out_row = outBlock.firstRow + p / 32;
        const unsigned out_col = p % 32;
        builder.write(out_row, out_col, Burst{}); // MOV EVEN <- GRF_B[0]
        fence_tick();
        builder.read(out_row, out_col); // MOV GRF_B[0] <- SRF_A[0]
        fence_tick();
        builder.write(out_row, out_col, Burst{}); // MOV ODD <- GRF_B[1]
        fence_tick();
        builder.read(out_row, out_col); // MOV GRF_B[1] <- SRF_A[0]
        fence_tick();
    }
    if (since_fence)
        builder.fence();
    appendEpilogue(builder);

    const double partial_bytes = static_cast<double>(m) * kBurstBytes;
    const double stream_bw =
        system_.config().offChipBandwidthGBs() * 0.8; // GB/s ~= B/ns

    const std::uint64_t corr0 = system_.errorLog().corrected();
    const std::uint64_t uc_start = system_.errorLog().uncorrectable();
    for (unsigned attempt = 0; attempt <= maxRetries_; ++attempt) {
        const std::uint64_t uc0 = system_.errorLog().uncorrectable();
        preloadW();

        ActivityProbe probe(system_);
        const PimRunResult run =
            runPimProgramReplicated(system_, prog, channels);
        const ChannelActivity activity = probe.delta();
        timing.ns += run.ns;
        timing.commands += run.commands;
        timing.fences += run.fences;
        timing.acts += activity.acts;
        timing.pimTriggers += activity.pimTriggers;
        timing.pimBankAccesses +=
            activity.pimBankReads + activity.pimBankWrites;
        timing.pimOps += activity.pimOps;

        // ---- Host readback and lane reduction ----
        // Each output burst holds 16 FP16 partial sums; the host streams
        // the partial buffers back (SB mode) and reduces. Timed
        // analytically as a full-bandwidth stream plus negligible
        // compute. The read passes through ECC like any demand access.
        for (std::uint64_t mm = 0; mm < m; ++mm) {
            const std::uint64_t pass_slot = mm / 2;
            const unsigned p = static_cast<unsigned>(pass_slot / slots);
            const unsigned slot = static_cast<unsigned>(pass_slot % slots);
            const unsigned ch = slot / units;
            const unsigned u = slot % units;
            const unsigned k = static_cast<unsigned>(mm % 2);
            const Burst partials = driver_.peek(
                ch, 2 * u + k, outBlock.firstRow + p / 32, p % 32);
            const LaneVector lanes = burstToLanes(partials);
            double sum = 0.0;
            for (const auto &lane : lanes)
                sum += static_cast<double>(lane.toFloat());
            y[mm] = Fp16(static_cast<float>(sum));
        }
        timing.readbackNs += partial_bytes / stream_bw;

        const bool faulted = anyUnitFaulted();
        const bool new_uc = system_.errorLog().uncorrectable() > uc0;
        if (!faulted && !new_uc) {
            // Reported-error-free run: the only remaining hazard is a
            // silent corruption, which only the checksum can see.
            if (abft_)
                abftVerifyGemv(w, m, n, x, y, blocks, timing);
            timing.eccCorrected = system_.errorLog().corrected() - corr0;
            timing.eccUncorrectable =
                system_.errorLog().uncorrectable() - uc_start;
            traceKernel(span_name, start);
            return timing;
        }
        if (attempt < maxRetries_) {
            ++timing.retries;
            PIMSIM_WARN("GEMV PIM kernel reported ",
                        faulted ? "a faulted unit"
                                : "uncorrectable ECC errors",
                        "; retry ", timing.retries, "/", maxRetries_);
        }
    }

    PIMSIM_WARN("GEMV PIM kernel still failing after ", maxRetries_,
                " retries; falling back to host execution");
    y = refGemv(w, m, n, x);
    timing.hostFallback = true;
    timing.eccCorrected = system_.errorLog().corrected() - corr0;
    timing.eccUncorrectable = system_.errorLog().uncorrectable() - uc_start;
    traceKernel(span_name, start);
    return timing;
}

void
PimBlas::abftVerifyGemv(const Fp16Vector &w, unsigned m, unsigned n,
                        const Fp16Vector &x, Fp16Vector &y,
                        unsigned blocks, BlasTiming &timing)
{
    const unsigned channels = system_.numChannels();
    const unsigned units = system_.config().pim.unitsPerPch;
    const unsigned slots = channels * units;
    const unsigned passes =
        static_cast<unsigned>(divCeil(m, std::uint64_t{2} * slots));

    // ---- Tolerance band, from the fp16 rounding model ----
    // Each lane accumulates 8 MACs per block; every non-fused MAC rounds
    // the product and the add (2 roundings), and the host reduction's
    // final fp16 store adds one more relative + absolute rounding. With
    // eps = 2^-11 (round-to-nearest half-ulp) and delta = 2^-25 (half of
    // the smallest subnormal, covering underflow flushes), first-order
    // accumulation theory bounds a tile's sum deviation by
    //   roundings * (eps * sum|w||x| + 16 * delta * rows).
    // kSafety absorbs the second-order terms and the double reduction.
    const double eps = 0x1p-11;
    const double delta = 0x1p-25;
    const double roundings = 16.0 * blocks + 2.0;
    const double kSafety = 4.0;

    // Two checksum rows per tile: the plain column sum s1 and the
    // index-weighted sum s2 (weight 1 + local row index). A pair of
    // in-tile errors cancelling in s1 cannot also cancel in s2, so any
    // corruption of at most two rows per tile is always caught.
    std::vector<double> xd(n), xa(n);
    bool x_finite = true;
    for (unsigned j = 0; j < n; ++j) {
        xd[j] = static_cast<double>(x[j].toFloat());
        xa[j] = std::fabs(xd[j]);
        x_finite = x_finite && std::isfinite(xd[j]);
    }

    struct TileVerdict
    {
        unsigned slot;
        bool tripped; ///< checksum band mismatch (vs. saturated partials)
    };
    std::vector<TileVerdict> flagged;
    std::vector<unsigned> cleanSlots;
    std::vector<double> s1(n), s2(n), a1(n), a2(n);

    const double now = system_.nowNs();
    for (unsigned slot = 0; slot < slots; ++slot) {
        std::fill(s1.begin(), s1.end(), 0.0);
        std::fill(s2.begin(), s2.end(), 0.0);
        std::fill(a1.begin(), a1.end(), 0.0);
        std::fill(a2.begin(), a2.end(), 0.0);
        double y1 = 0.0, y2 = 0.0, wsum = 0.0;
        unsigned rows = 0;
        bool finite = x_finite;
        for (unsigned p = 0; p < passes; ++p) {
            for (unsigned k = 0; k < 2; ++k) {
                const std::uint64_t mm =
                    2ull * (std::uint64_t{p} * slots + slot) + k;
                if (mm >= m)
                    continue;
                const double omega = 1.0 + 2.0 * p + k;
                for (unsigned j = 0; j < n; ++j) {
                    const double wv =
                        static_cast<double>(w[mm * n + j].toFloat());
                    const double wa = std::fabs(wv);
                    s1[j] += wv;
                    s2[j] += omega * wv;
                    a1[j] += wa;
                    a2[j] += omega * wa;
                    finite = finite && std::isfinite(wv);
                }
                const double yv = static_cast<double>(y[mm].toFloat());
                y1 += yv;
                y2 += omega * yv;
                finite = finite && std::isfinite(yv);
                wsum += omega;
                ++rows;
            }
        }
        if (rows == 0)
            continue;
        ++timing.abftChecks;
        double cs1 = 0.0, cs2 = 0.0, ca1 = 0.0, ca2 = 0.0;
        for (unsigned j = 0; j < n; ++j) {
            cs1 += s1[j] * xd[j];
            cs2 += s2[j] * xd[j];
            ca1 += a1[j] * xa[j];
            ca2 += a2[j] * xa[j];
        }
        if (!finite || !std::isfinite(cs1) || !std::isfinite(cs2)) {
            // Saturated partials carry no checksum information: a clean
            // overflow and a corruption look identical here, so the tile
            // goes straight to the golden compare.
            ++timing.abftUnverifiable;
            flagged.push_back({slot, false});
            continue;
        }
        const double tol1 =
            kSafety * roundings * (eps * ca1 + 16.0 * delta * rows);
        const double tol2 =
            kSafety * roundings * (eps * ca2 + 16.0 * delta * wsum);
        if (std::fabs(y1 - cs1) > tol1 || std::fabs(y2 - cs2) > tol2) {
            ++timing.abftMismatches;
            if (sdcMonitor_)
                sdcMonitor_->recordDetected(slot / units, slot % units,
                                            now);
            flagged.push_back({slot, true});
        } else {
            cleanSlots.push_back(slot);
        }
    }
    // Verification streams x and y through the host checker once.
    timing.abftNs += (static_cast<double>(m) + n) * 2.0 /
                     (system_.config().offChipBandwidthGBs() * 0.8);

    if (flagged.empty()) {
        if (sdcMonitor_) {
            for (unsigned slot : cleanSlots)
                sdcMonitor_->recordClean(slot / units, slot % units, now);
        }
        return;
    }

    // ---- Golden confirmation ----
    // refGemv reproduces the PIM datapath bit-exactly on a fault-free
    // run, so any bit difference inside a flagged tile is a confirmed
    // silent corruption; bit equality on a tripped band is a false alarm.
    const Fp16Vector golden = refGemv(w, m, n, x);
    bool corrupted_any = false;
    for (const TileVerdict &v : flagged) {
        bool corrupted = false;
        for (unsigned p = 0; p < passes && !corrupted; ++p) {
            for (unsigned k = 0; k < 2; ++k) {
                const std::uint64_t mm =
                    2ull * (std::uint64_t{p} * slots + v.slot) + k;
                if (mm < m && y[mm].bits() != golden[mm].bits()) {
                    corrupted = true;
                    break;
                }
            }
        }
        const unsigned ch = v.slot / units;
        const unsigned u = v.slot % units;
        if (corrupted) {
            ++timing.sdcConfirmed;
            corrupted_any = true;
            if (sdcMonitor_)
                sdcMonitor_->recordConfirmed(ch, u, now);
        } else if (v.tripped) {
            ++timing.sdcFalseAlarms;
            if (sdcMonitor_)
                sdcMonitor_->recordFalseAlarm(ch, u, now);
        } else if (sdcMonitor_) {
            // Saturated but bit-identical to golden: verified clean.
            sdcMonitor_->recordClean(ch, u, now);
        }
    }
    if (sdcMonitor_) {
        for (unsigned slot : cleanSlots)
            sdcMonitor_->recordClean(slot / units, slot % units, now);
    }
    if (corrupted_any) {
        PIMSIM_WARN("GEMV ABFT confirmed ", timing.sdcConfirmed,
                    " corrupted tile(s); returning the host golden result");
        y = golden;
        timing.hostFallback = true;
    }
}

} // namespace pimsim
