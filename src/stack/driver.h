/**
 * @file
 * PIM device driver (Section V-A).
 *
 * The driver reserves the PIM-operable memory space at boot, marks it
 * uncacheable, and hands out physically contiguous blocks so the
 * runtime never worries about virtual-physical translation. In the
 * simulator the reservation is a row-range allocator: PIM operands live
 * at the *same row index in every bank of every channel*, which is what
 * the AB-mode lock-step access pattern requires (one ACT opens the row
 * everywhere).
 */

#ifndef PIMSIM_STACK_DRIVER_H
#define PIMSIM_STACK_DRIVER_H

#include "common/types.h"
#include "dram/datastore.h"
#include "sim/system.h"

namespace pimsim {

/** A block of PIM-reserved rows (same indices across channels/banks). */
struct PimRowBlock
{
    unsigned firstRow = 0;
    unsigned numRows = 0;
};

/** The kernel-side driver for PIM-HBM. */
class PimDriver
{
  public:
    explicit PimDriver(PimSystem &system);

    /** Allocate `count` rows of PIM space (fatal on exhaustion). */
    PimRowBlock allocRows(unsigned count);

    /** Release every allocation (end of workload). */
    void reset();

    /** Rows still available. */
    unsigned freeRows() const { return limitRow_ - nextRow_; }

    /**
     * Functional preload: place a burst directly into DRAM. Models data
     * that is already resident in the PIM region (e.g. weights mapped at
     * initialisation); not part of timed kernel execution.
     */
    void preload(unsigned channel, unsigned flat_bank, unsigned row,
                 unsigned col, const Burst &data);

    /** Functional readback (verification / untimed result consumption). */
    Burst peek(unsigned channel, unsigned flat_bank, unsigned row,
               unsigned col) const;

    PimSystem &system() { return system_; }

  private:
    PimSystem &system_;
    unsigned nextRow_ = 0;
    unsigned limitRow_; ///< PIM_CONF rows live above this
};

} // namespace pimsim

#endif // PIMSIM_STACK_DRIVER_H
