/**
 * @file
 * PIM device driver (Section V-A).
 *
 * The driver reserves the PIM-operable memory space at boot, marks it
 * uncacheable, and hands out physically contiguous blocks so the
 * runtime never worries about virtual-physical translation. In the
 * simulator the reservation is a row-range allocator: PIM operands live
 * at the *same row index in every bank of every channel*, which is what
 * the AB-mode lock-step access pattern requires (one ACT opens the row
 * everywhere).
 *
 * Allocation is a first-fit free list over row extents, so blocks can
 * be released and re-used mid-workload. Exhaustion is a recoverable
 * status, not a fatal error: the runtime falls back to host execution
 * when the PIM region cannot hold a kernel's operands.
 */

#ifndef PIMSIM_STACK_DRIVER_H
#define PIMSIM_STACK_DRIVER_H

#include <vector>

#include "common/types.h"
#include "dram/datastore.h"
#include "sim/system.h"

namespace pimsim {

/** A block of PIM-reserved rows (same indices across channels/banks). */
struct PimRowBlock
{
    unsigned firstRow = 0;
    unsigned numRows = 0;
};

/** Driver call outcomes. */
enum class PimStatus
{
    Ok,           ///< request satisfied
    OutOfRows,    ///< no free extent large enough
    InvalidBlock, ///< block was not allocated by this driver (or freed twice)
};

const char *pimStatusName(PimStatus status);

/** The kernel-side driver for PIM-HBM. */
class PimDriver
{
  public:
    explicit PimDriver(PimSystem &system);

    /**
     * Partitioned driver: allocations are confined to the row range
     * [first_row, first_row + row_count), clamped to the PIM-operable
     * region. Disjoint partitions over one system give tenants hard
     * allocation isolation (the serving layer's channel/row sharding):
     * exhausting one partition can never spill into another.
     */
    PimDriver(PimSystem &system, unsigned first_row, unsigned row_count);

    /**
     * Allocate `count` contiguous rows of PIM space (first fit).
     * On success `out` holds the block; on failure `out` is zeroed and
     * the caller decides how to degrade (host fallback, smaller tiles).
     */
    PimStatus allocRows(unsigned count, PimRowBlock &out);

    /** Return a block to the free list (coalescing with neighbours). */
    PimStatus freeBlock(const PimRowBlock &block);

    /** Release every allocation (end of workload). */
    void reset();

    /** Rows still available (across all free extents). */
    unsigned freeRows() const;

    /** Largest single allocation currently possible. */
    unsigned largestFreeExtent() const;

    /** Total rows this driver's partition spans. */
    unsigned capacityRows() const { return spanRows_; }

    /** First row of this driver's partition. */
    unsigned baseRow() const { return baseRow_; }

    /**
     * Functional preload: place a burst directly into DRAM. Models data
     * that is already resident in the PIM region (e.g. weights mapped at
     * initialisation); not part of timed kernel execution.
     */
    void preload(unsigned channel, unsigned flat_bank, unsigned row,
                 unsigned col, const Burst &data);

    /** Functional readback (verification / untimed result consumption). */
    Burst peek(unsigned channel, unsigned flat_bank, unsigned row,
               unsigned col) const;

    /** Functional readback that also reports the on-die ECC outcome. */
    Burst peekChecked(unsigned channel, unsigned flat_bank, unsigned row,
                      unsigned col, EccStatus *ecc) const;

    PimSystem &system() { return system_; }

  private:
    /** A contiguous run of free rows. */
    struct Extent
    {
        unsigned first = 0;
        unsigned count = 0;
    };

    PimSystem &system_;
    unsigned baseRow_;  ///< first row of this driver's partition
    unsigned spanRows_; ///< rows in the partition (PIM_CONF lives above)
    /** Free extents, sorted by first row, never adjacent (coalesced). */
    std::vector<Extent> free_;
    /** Live allocations, for freeBlock() validation. */
    std::vector<PimRowBlock> allocated_;
};

} // namespace pimsim

#endif // PIMSIM_STACK_DRIVER_H
