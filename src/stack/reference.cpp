#include "stack/reference.h"

#include "common/logging.h"
#include "common/types.h"

namespace pimsim {

Fp16Vector
refAdd(const Fp16Vector &a, const Fp16Vector &b)
{
    PIMSIM_ASSERT(a.size() == b.size(), "length mismatch");
    Fp16Vector out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = fp16Add(a[i], b[i]);
    return out;
}

Fp16Vector
refMul(const Fp16Vector &a, const Fp16Vector &b)
{
    PIMSIM_ASSERT(a.size() == b.size(), "length mismatch");
    Fp16Vector out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = fp16Mul(a[i], b[i]);
    return out;
}

Fp16Vector
refRelu(const Fp16Vector &a)
{
    Fp16Vector out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = fp16Relu(a[i]);
    return out;
}

Fp16Vector
refBn(const Fp16Vector &a, const Fp16Vector &gamma, const Fp16Vector &beta,
      unsigned slots)
{
    PIMSIM_ASSERT(gamma.size() == 8 && beta.size() == 8,
                  "bn expects 8 scalar groups");
    Fp16Vector out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        const std::size_t chunk = i / kSimdLanes;
        const unsigned g = static_cast<unsigned>((chunk / slots) % 8);
        out[i] = fp16Mad(a[i], gamma[g], beta[g]);
    }
    return out;
}

Fp16Vector
refGemv(const Fp16Vector &w, unsigned m, unsigned n, const Fp16Vector &x)
{
    PIMSIM_ASSERT(w.size() == std::size_t{m} * n, "W shape mismatch");
    PIMSIM_ASSERT(x.size() == n, "x length mismatch");
    Fp16Vector y(m);
    const unsigned blocks = static_cast<unsigned>((n + 127) / 128);
    for (unsigned mm = 0; mm < m; ++mm) {
        Fp16 partial[kSimdLanes] = {};
        for (unsigned nb = 0; nb < blocks; ++nb) {
            for (unsigned j = 0; j < 8; ++j) {
                for (unsigned lane = 0; lane < kSimdLanes; ++lane) {
                    const std::uint64_t idx =
                        std::uint64_t{nb} * 128 + j * 16 + lane;
                    if (idx < n) {
                        partial[lane] = fp16Mac(w[std::uint64_t{mm} * n + idx],
                                                x[idx], partial[lane]);
                    }
                }
            }
        }
        double sum = 0.0;
        for (const auto &p : partial)
            sum += static_cast<double>(p.toFloat());
        y[mm] = Fp16(static_cast<float>(sum));
    }
    return y;
}

std::vector<double>
refGemvF64(const Fp16Vector &w, unsigned m, unsigned n, const Fp16Vector &x)
{
    std::vector<double> y(m, 0.0);
    for (unsigned mm = 0; mm < m; ++mm) {
        double sum = 0.0;
        for (unsigned nn = 0; nn < n; ++nn) {
            sum += static_cast<double>(w[std::uint64_t{mm} * n + nn].toFloat()) *
                   static_cast<double>(x[nn].toFloat());
        }
        y[mm] = sum;
    }
    return y;
}

} // namespace pimsim
