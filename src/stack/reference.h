/**
 * @file
 * Golden host-side reference implementations.
 *
 * These compute exactly what the PIM datapath computes — same FP16
 * rounding, same accumulation order, same lane-partial structure — so
 * integration tests can require bit-exact agreement between simulated
 * PIM execution and the reference.
 */

#ifndef PIMSIM_STACK_REFERENCE_H
#define PIMSIM_STACK_REFERENCE_H

#include <vector>

#include "common/fp16.h"

namespace pimsim {

using Fp16Vector = std::vector<Fp16>;

/** out[i] = a[i] + b[i] with FP16 rounding. */
Fp16Vector refAdd(const Fp16Vector &a, const Fp16Vector &b);

/** out[i] = a[i] * b[i] with FP16 rounding. */
Fp16Vector refMul(const Fp16Vector &a, const Fp16Vector &b);

/** out[i] = ReLU(a[i]) (sign-bit mux). */
Fp16Vector refRelu(const Fp16Vector &a);

/**
 * out[i] = a[i] * gamma[g] + beta[g] under the PIM BLAS element-wise
 * layout: chunk q of 16 elements lands at column position
 * (q / slots) % 8, where slots = channels * units of the target system,
 * and AAM selects SRF group g = that column position.
 */
Fp16Vector refBn(const Fp16Vector &a, const Fp16Vector &gamma,
                 const Fp16Vector &beta, unsigned slots);

/**
 * y = W x computed the PIM way: 16 FP16 lane-partial accumulators per
 * output row, accumulated in block order, reduced in double and rounded
 * once (the host-side reduction of the PIM BLAS).
 */
Fp16Vector refGemv(const Fp16Vector &w, unsigned m, unsigned n,
                   const Fp16Vector &x);

/** Plain double-precision GEMV (accuracy yardstick for tests). */
std::vector<double> refGemvF64(const Fp16Vector &w, unsigned m, unsigned n,
                               const Fp16Vector &x);

} // namespace pimsim

#endif // PIMSIM_STACK_REFERENCE_H
