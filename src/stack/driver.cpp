#include "stack/driver.h"

#include "common/logging.h"
#include "pim/pim_config.h"

namespace pimsim {

PimDriver::PimDriver(PimSystem &system)
    : system_(system),
      limitRow_(PimConfMap::forRows(system.config().geometry.rowsPerBank)
                    .firstReservedRow())
{
}

PimRowBlock
PimDriver::allocRows(unsigned count)
{
    if (nextRow_ + count > limitRow_) {
        PIMSIM_FATAL("PIM row space exhausted: want ", count, ", free ",
                     freeRows());
    }
    PimRowBlock block{nextRow_, count};
    nextRow_ += count;
    return block;
}

void
PimDriver::reset()
{
    nextRow_ = 0;
}

void
PimDriver::preload(unsigned channel, unsigned flat_bank, unsigned row,
                   unsigned col, const Burst &data)
{
    system_.controller(channel).channel().dataStore().write(flat_bank, row,
                                                            col, data);
}

Burst
PimDriver::peek(unsigned channel, unsigned flat_bank, unsigned row,
                unsigned col) const
{
    return system_.controller(channel).channel().dataStore().read(flat_bank,
                                                                  row, col);
}

} // namespace pimsim
