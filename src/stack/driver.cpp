#include "stack/driver.h"

#include <algorithm>

#include "common/logging.h"
#include "pim/pim_config.h"

namespace pimsim {

const char *
pimStatusName(PimStatus status)
{
    switch (status) {
      case PimStatus::Ok:
        return "Ok";
      case PimStatus::OutOfRows:
        return "OutOfRows";
      case PimStatus::InvalidBlock:
        return "InvalidBlock";
    }
    return "?";
}

PimDriver::PimDriver(PimSystem &system)
    : PimDriver(system, 0,
                PimConfMap::forRows(system.config().geometry.rowsPerBank)
                    .firstReservedRow())
{
}

PimDriver::PimDriver(PimSystem &system, unsigned first_row,
                     unsigned row_count)
    : system_(system)
{
    const unsigned limit =
        PimConfMap::forRows(system.config().geometry.rowsPerBank)
            .firstReservedRow();
    baseRow_ = std::min(first_row, limit);
    spanRows_ = std::min(row_count, limit - baseRow_);
    if (spanRows_)
        free_.push_back(Extent{baseRow_, spanRows_});
}

PimStatus
PimDriver::allocRows(unsigned count, PimRowBlock &out)
{
    out = PimRowBlock{};
    if (count == 0)
        return PimStatus::Ok;
    for (auto it = free_.begin(); it != free_.end(); ++it) {
        if (it->count < count)
            continue;
        out.firstRow = it->first;
        out.numRows = count;
        it->first += count;
        it->count -= count;
        if (it->count == 0)
            free_.erase(it);
        allocated_.push_back(out);
        return PimStatus::Ok;
    }
    return PimStatus::OutOfRows;
}

PimStatus
PimDriver::freeBlock(const PimRowBlock &block)
{
    if (block.numRows == 0)
        return PimStatus::Ok;
    const auto live = std::find_if(
        allocated_.begin(), allocated_.end(), [&](const PimRowBlock &b) {
            return b.firstRow == block.firstRow &&
                   b.numRows == block.numRows;
        });
    if (live == allocated_.end())
        return PimStatus::InvalidBlock;
    allocated_.erase(live);

    // Insert sorted by first row, then coalesce with both neighbours.
    const auto pos = std::lower_bound(
        free_.begin(), free_.end(), block.firstRow,
        [](const Extent &e, unsigned first) { return e.first < first; });
    auto it = free_.insert(pos, Extent{block.firstRow, block.numRows});
    if (it != free_.begin()) {
        auto prev = it - 1;
        if (prev->first + prev->count == it->first) {
            prev->count += it->count;
            it = free_.erase(it) - 1;
        }
    }
    if (it + 1 != free_.end()) {
        auto next = it + 1;
        if (it->first + it->count == next->first) {
            it->count += next->count;
            free_.erase(next);
        }
    }
    return PimStatus::Ok;
}

void
PimDriver::reset()
{
    free_.clear();
    if (spanRows_)
        free_.push_back(Extent{baseRow_, spanRows_});
    allocated_.clear();
}

unsigned
PimDriver::freeRows() const
{
    unsigned total = 0;
    for (const Extent &e : free_)
        total += e.count;
    return total;
}

unsigned
PimDriver::largestFreeExtent() const
{
    unsigned best = 0;
    for (const Extent &e : free_)
        best = std::max(best, e.count);
    return best;
}

void
PimDriver::preload(unsigned channel, unsigned flat_bank, unsigned row,
                   unsigned col, const Burst &data)
{
    system_.controller(channel).channel().dataStore().write(flat_bank, row,
                                                            col, data);
}

Burst
PimDriver::peek(unsigned channel, unsigned flat_bank, unsigned row,
                unsigned col) const
{
    return system_.controller(channel).channel().dataStore().read(flat_bank,
                                                                  row, col);
}

Burst
PimDriver::peekChecked(unsigned channel, unsigned flat_bank, unsigned row,
                       unsigned col, EccStatus *ecc) const
{
    return system_.controller(channel).channel().dataStore().read(
        flat_bank, row, col, ecc);
}

} // namespace pimsim
