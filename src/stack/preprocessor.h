/**
 * @file
 * PIM runtime preprocessor (Section V-A).
 *
 * The paper's runtime has three modules: the *preprocessor* that finds
 * ops suitable for PIM acceleration at runtime, the *memory manager*
 * (PimDriver here), and the *executor* (the program runner). This is
 * the preprocessor: a cost model that decides, per op invocation,
 * whether the PIM path beats the host path — so compute-bound layers
 * and batched GEMMs stay on the host automatically (the Fig. 10
 * behaviour where ResNet is untouched and batch-4 GEMV prefers HBM).
 */

#ifndef PIMSIM_STACK_PREPROCESSOR_H
#define PIMSIM_STACK_PREPROCESSOR_H

#include "host/host_config.h"
#include "sim/system_config.h"
#include "stack/workloads.h"

namespace pimsim {

/** The preprocessor's verdict for one op invocation. */
struct OffloadDecision
{
    bool usePim = false;
    double estimatedPimNs = 0.0;
    double estimatedHostNs = 0.0;
};

/**
 * Static cost model mirroring how the simulator's PIM and host paths
 * behave. Estimates are analytic (no simulation) so the decision itself
 * is cheap, as a runtime pass must be.
 */
class PimPreprocessor
{
  public:
    explicit PimPreprocessor(const SystemConfig &config);

    /** Decide a GEMV of shape (m x n) at a batch size. */
    OffloadDecision gemv(unsigned m, unsigned n, unsigned batch) const;

    /** Decide an element-wise op over `elements` values with
     *  `operand_count` streamed inputs (1 for ReLU/BN, 2 for ADD/MUL). */
    OffloadDecision elementwise(std::uint64_t elements,
                                unsigned operand_count) const;

    /** Convolutions never offload (compute-bound; Section VII-A). */
    OffloadDecision conv(double flops) const;

    /** Estimated PIM GEMV kernel time (analytic, ns). */
    double pimGemvNs(unsigned m, unsigned n) const;
    /** Estimated PIM element-wise kernel time (analytic, ns). */
    double pimElementwiseNs(std::uint64_t elements,
                            unsigned operand_count) const;

  private:
    double commandStreamNs(double commands_per_channel) const;

    SystemConfig config_;
};

} // namespace pimsim

#endif // PIMSIM_STACK_PREPROCESSOR_H
