#include "stack/preprocessor.h"

#include <algorithm>
#include <cmath>

#include "common/bits.h"
#include "common/types.h"

namespace pimsim {

PimPreprocessor::PimPreprocessor(const SystemConfig &config)
    : config_(config)
{
}

double
PimPreprocessor::commandStreamNs(double commands_per_channel) const
{
    const HbmTiming &t = config_.timing;
    // One trigger per tCCD_L; every aamWindow commands a fence drains
    // the pipe (read latency) and pays the barrier cost.
    const double per_cmd = t.tCCDL * t.tCKns;
    const double window = config_.pim.aamWindow();
    const double fence = (t.tCL + t.tBL) * t.tCKns +
                         config_.host.fenceNs;
    return commands_per_channel * per_cmd +
           commands_per_channel / window * fence;
}

double
PimPreprocessor::pimGemvNs(unsigned m, unsigned n) const
{
    const unsigned slots =
        config_.numChannels() * config_.pim.unitsPerPch;
    const double blocks = divCeil(n, 128);
    const double passes =
        std::ceil(static_cast<double>(m) / (2.0 * slots));
    // 8 x-loads + 16 W reads per block, 4 store/clear steps per pass.
    const double commands = passes * (blocks * 24.0 + 4.0) + 24.0;
    return commandStreamNs(commands);
}

double
PimPreprocessor::pimElementwiseNs(std::uint64_t elements,
                                  unsigned operand_count) const
{
    const double chunks =
        static_cast<double>(divCeil(elements, kSimdLanes));
    const double chunks_per_channel =
        chunks / config_.numChannels();
    // Commands per chunk: one RD per streamed operand + one WR, spread
    // over the units of the channel.
    const double commands = chunks_per_channel *
                            (operand_count + 1.0) /
                            config_.pim.unitsPerPch;
    return commandStreamNs(commands + 24.0);
}

OffloadDecision
PimPreprocessor::gemv(unsigned m, unsigned n, unsigned batch) const
{
    OffloadDecision d;
    d.estimatedPimNs =
        batch * pimGemvNs(m, n) + config_.host.kernelLaunchNs;

    // Host estimate mirrors HostModel::gemv's issue model.
    const HostConfig &host = config_.host;
    const double waves = std::ceil(static_cast<double>(m) / host.waveSize);
    const double cus = std::min<double>(host.computeUnits,
                                        std::max(1.0, waves));
    const double amortise = std::min(std::pow(batch, 0.7), 8.0);
    const double issue = static_cast<double>(m) * n /
                         (cus * host.coreGHz *
                          host.scalarLoadsPerCyclePerCu * amortise);
    const double stream = 2.0 * m * n /
                          (0.85 * config_.offChipBandwidthGBs());
    d.estimatedHostNs =
        std::max(issue, stream) + config_.host.kernelLaunchNs;
    d.usePim = d.estimatedPimNs < d.estimatedHostNs;
    return d;
}

OffloadDecision
PimPreprocessor::elementwise(std::uint64_t elements,
                             unsigned operand_count) const
{
    OffloadDecision d;
    d.estimatedPimNs = pimElementwiseNs(elements, operand_count) +
                       config_.host.kernelLaunchNs;
    const double bytes = 2.0 * elements * (operand_count + 1.0);
    d.estimatedHostNs = bytes / (0.8 * config_.offChipBandwidthGBs()) +
                        config_.host.kernelLaunchNs;
    d.usePim = d.estimatedPimNs < d.estimatedHostNs;
    return d;
}

OffloadDecision
PimPreprocessor::conv(double flops) const
{
    OffloadDecision d;
    const HostConfig &host = config_.host;
    d.estimatedHostNs =
        flops / (host.peakFlops() * host.convEfficiency) * 1e9;
    // No PIM path for dense convolutions (compute-bound, Section VII-A).
    d.estimatedPimNs = d.estimatedHostNs * 100.0;
    d.usePim = false;
    return d;
}

} // namespace pimsim
