#include "stack/workloads.h"

namespace pimsim {

std::vector<MicroSpec>
table6Microbenchmarks()
{
    // Table VI: GEMV dims and element-wise ADD sizes.
    return {
        {"GEMV1", MicroKind::Gemv, 1024, 4096, 0},
        {"GEMV2", MicroKind::Gemv, 2048, 4096, 0},
        {"GEMV3", MicroKind::Gemv, 4096, 8192, 0},
        {"GEMV4", MicroKind::Gemv, 8192, 8192, 0},
        {"ADD1", MicroKind::Add, 0, 0, 2u << 20},
        {"ADD2", MicroKind::Add, 0, 0, 4u << 20},
        {"ADD3", MicroKind::Add, 0, 0, 8u << 20},
        {"ADD4", MicroKind::Add, 0, 0, 16u << 20},
    };
}

std::vector<MicroSpec>
bnMicrobenchmarks()
{
    // Fig. 14 evaluates BN "with the same input size as ADD".
    return {
        {"BN1", MicroKind::Bn, 0, 0, 2u << 20},
        {"BN2", MicroKind::Bn, 0, 0, 4u << 20},
        {"BN3", MicroKind::Bn, 0, 0, 8u << 20},
        {"BN4", MicroKind::Bn, 0, 0, 16u << 20},
    };
}

namespace {

/** A fused LSTM layer: gates = W [x_t ; h_{t-1}], one GEMV per step. */
LayerSpec
lstm(unsigned hidden, unsigned input, unsigned steps, bool inputs_available)
{
    LayerSpec l;
    l.kind = LayerSpec::Kind::Lstm;
    l.hidden = hidden;
    l.input = input;
    l.steps = steps;
    l.inputsAvailable = inputs_available;
    return l;
}

LayerSpec
fc(unsigned out, unsigned in, unsigned steps = 1,
   bool inputs_available = true)
{
    LayerSpec l;
    l.kind = LayerSpec::Kind::Fc;
    l.hidden = out;
    l.input = in;
    l.steps = steps;
    l.inputsAvailable = inputs_available;
    return l;
}

LayerSpec
conv(double flops)
{
    LayerSpec l;
    l.kind = LayerSpec::Kind::Conv;
    l.flops = flops;
    l.pimEligible = false;
    return l;
}

LayerSpec
residual(std::uint64_t elements, unsigned steps = 1)
{
    LayerSpec l;
    l.kind = LayerSpec::Kind::Residual;
    l.elements = elements;
    l.steps = steps;
    return l;
}

LayerSpec
batchNorm(std::uint64_t elements, unsigned steps = 1)
{
    LayerSpec l;
    l.kind = LayerSpec::Kind::BatchNorm;
    l.elements = elements;
    l.steps = steps;
    l.pimEligible = false; // paper applies PIM to LSTM/FC layers only
    return l;
}

} // namespace

AppSpec
ds2App()
{
    // Baidu DeepSpeech2 (Section VII-A): 2 convolution layers, 6
    // bidirectional LSTM layers, one FC layer; 2 s spectrogram input
    // (~100 post-conv timesteps). Bidirectional = 2 directions per
    // layer, both encoder-style (all inputs available).
    AppSpec app;
    app.name = "DS2";
    app.layers.push_back(conv(0.6e9));
    app.layers.push_back(conv(0.9e9));
    for (int layer = 0; layer < 6; ++layer) {
        for (int dir = 0; dir < 2; ++dir)
            app.layers.push_back(lstm(1760, 1760, 100, true));
    }
    app.layers.push_back(fc(1600, 1760, 100, true));
    return app;
}

AppSpec
rnntApp()
{
    // RNN-T (MLPerf variant): 5 encoder LSTM layers, 2 prediction LSTM
    // layers, 2 FC joint layers with ReLU/dropout; 2 s of audio.
    AppSpec app;
    app.name = "RNN-T";
    for (int i = 0; i < 5; ++i)
        app.layers.push_back(lstm(1024, 1024, 100, true));
    for (int i = 0; i < 2; ++i)
        app.layers.push_back(lstm(320, 320, 40, false)); // label-dependent
    app.layers.push_back(fc(512, 1344, 40, false));
    app.layers.push_back(fc(512, 512, 40, false));
    return app;
}

AppSpec
gnmtApp()
{
    // GNMT: 8 LSTM encoders (inputs available), 8 LSTM decoders (the
    // output of the previous step feeds the next: one PIM kernel call
    // per step per layer), attention; ~50-word sentences.
    AppSpec app;
    app.name = "GNMT";
    for (int i = 0; i < 8; ++i)
        app.layers.push_back(lstm(1024, 1024, 50, true));
    for (int i = 0; i < 8; ++i)
        app.layers.push_back(lstm(1024, 1024, 50, false));
    // Attention: batched matrix ops on the host (compute-friendly).
    LayerSpec attention = conv(2.0 * 50 * 50 * 1024);
    app.layers.push_back(attention);
    return app;
}

AppSpec
alexnetApp()
{
    // AlexNet: 5 convolutions (compute-bound) + 3 FC layers; the FC
    // layers are the PIM-accelerated part (Section VII-B).
    AppSpec app;
    app.name = "AlexNet";
    app.layers.push_back(conv(0.21e9));
    app.layers.push_back(conv(0.45e9));
    app.layers.push_back(conv(0.3e9));
    app.layers.push_back(conv(0.22e9));
    app.layers.push_back(conv(0.15e9));
    app.layers.push_back(fc(4096, 9216));
    app.layers.push_back(fc(4096, 4096));
    app.layers.push_back(fc(1000, 4096));
    return app;
}

AppSpec
resnet50App()
{
    // ResNet-50: convolution-dominated with BN and skip connections.
    // The paper runs it unmodified to show PIM does not hurt
    // compute-bound applications (Fig. 10: 1.0x).
    AppSpec app;
    app.name = "ResNet";
    // ~4 GFLOPs of convolutions for one 224x224x3 image, split over
    // the four stages.
    app.layers.push_back(conv(0.7e9));
    app.layers.push_back(conv(1.1e9));
    app.layers.push_back(conv(1.3e9));
    app.layers.push_back(conv(0.9e9));
    // BN + skip-connection traffic: memory-bound but small relative to
    // the convolutions; left on the host like the paper's runs.
    app.layers.push_back(batchNorm(11u << 20));
    LayerSpec skip = residual(3u << 20);
    skip.pimEligible = false;
    app.layers.push_back(skip);
    app.layers.push_back(fc(1000, 2048));
    return app;
}

std::vector<AppSpec>
allApps()
{
    return {ds2App(), rnntApp(), gnmtApp(), alexnetApp(), resnet50App()};
}

} // namespace pimsim
