/**
 * @file
 * LLM decode-serving demo: continuous batching over a paged KV cache
 * on one PIM-HBM stack.
 *
 *   $ ./app_llm                              # continuous batching, load 0.8
 *   $ ./app_llm --policy admit-once          # padded static batches
 *   $ ./app_llm --load 1.0 --deadline-ms 600 # saturate with a tight SLO
 *   $ ./app_llm --burst 4                    # 4x arrival burst mid-run
 *   $ ./app_llm --trace-out=trace.json       # pid-6 iteration/KV timeline
 *   $ ./app_llm --stats-json=stats.json      # stats registry + seed dump
 *
 * Everything is deterministic: the same flags replay identically.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "common/json.h"
#include "common/logging.h"
#include "common/trace.h"
#include "llm/engine.h"
#include "llm/trace_gen.h"
#include "serve/load_gen.h"
#include "serve/service_model.h"

using namespace pimsim;
using namespace pimsim::llm;

namespace {

void
usage(const char *prog)
{
    std::fprintf(stderr,
                 "usage: %s [--policy continuous|admit-once] [--load F]\n"
                 "          [--deadline-ms N] [--requests N] [--burst F]\n"
                 "          [--seed N] [--tail-sample F] [--slo-target F]\n"
                 "          [--stats-json=PATH] [--trace-out=PATH]\n"
                 "          [--timeseries-out=PATH]\n"
                 "  --policy       batch scheduling policy (default "
                 "continuous)\n"
                 "  --load         offered load relative to request "
                 "capacity, > 0 (default 0.8)\n"
                 "  --deadline-ms  per-request completion SLO, 0 disables "
                 "(default 0 = auto)\n"
                 "  --requests     open-loop arrivals to draw (default "
                 "2000)\n"
                 "  --burst        arrival-rate multiplier for the middle "
                 "20%% of the run, >= 1 (default 1)\n"
                 "  --seed         arrival/length seed (default 1)\n"
                 "  --tail-sample  head-sample rate of the tail-based "
                 "request tracer,\n"
                 "                 in [0, 1] (default 0.01; erred / "
                 "deadline-missed /\n"
                 "                 preempted requests are always kept)\n"
                 "  --slo-target   SLO monitor good-fraction target, in "
                 "(0, 1) (default 0.99)\n"
                 "  --stats-json=PATH  dump the stats registry (with the "
                 "seed, SLO and\n"
                 "                     tail-sampling summaries) as JSON\n"
                 "  --trace-out=PATH   Chrome-trace timeline: decode "
                 "iterations, KV\n"
                 "                     occupancy, sampled per-request span "
                 "trees (pid-6)\n"
                 "                     and SLO alert instants (pid-7)\n"
                 "  --timeseries-out=PATH  windowed counter rates and "
                 "latency percentiles\n",
                 prog);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    BatchPolicy policy = BatchPolicy::Continuous;
    double load = 0.8;
    double deadline_ms = 0.0; // 0 = auto (5x an unloaded p95 request)
    unsigned requests = 2000;
    double burst = 1.0;
    std::uint64_t seed = 1;
    double tail_sample = 0.01;
    double slo_target = 0.99;
    std::string stats_json;
    std::string trace_out;
    std::string timeseries_out;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--stats-json=", 0) == 0) {
            stats_json = arg.substr(13);
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            trace_out = arg.substr(12);
        } else if (arg.rfind("--timeseries-out=", 0) == 0) {
            timeseries_out = arg.substr(17);
        } else if ((arg == "--tail-sample" && i + 1 < argc) ||
                   arg.rfind("--tail-sample=", 0) == 0) {
            const char *text =
                arg.size() > 13 && arg[13] == '=' ? arg.c_str() + 14
                                                  : argv[++i];
            char *end = nullptr;
            tail_sample = std::strtod(text, &end);
            if (end == text || *end != '\0' || tail_sample < 0.0 ||
                tail_sample > 1.0) {
                std::fprintf(stderr, "%s: bad --tail-sample '%s': expected "
                             "a number in [0, 1]\n", argv[0], text);
                usage(argv[0]);
                return 2;
            }
        } else if ((arg == "--slo-target" && i + 1 < argc) ||
                   arg.rfind("--slo-target=", 0) == 0) {
            const char *text =
                arg.size() > 12 && arg[12] == '=' ? arg.c_str() + 13
                                                  : argv[++i];
            char *end = nullptr;
            slo_target = std::strtod(text, &end);
            if (end == text || *end != '\0' || !(slo_target > 0.0) ||
                !(slo_target < 1.0)) {
                std::fprintf(stderr, "%s: bad --slo-target '%s': expected "
                             "a number in (0, 1)\n", argv[0], text);
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--policy" && i + 1 < argc) {
            const std::string p = argv[++i];
            if (p == "continuous") {
                policy = BatchPolicy::Continuous;
            } else if (p == "admit-once") {
                policy = BatchPolicy::AdmitOnce;
            } else {
                std::fprintf(stderr, "%s: unknown policy '%s'\n", argv[0],
                             p.c_str());
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--load" && i + 1 < argc) {
            char *end = nullptr;
            load = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || !(load > 0.0)) {
                std::fprintf(stderr, "%s: bad --load '%s': expected a "
                             "positive number\n", argv[0], argv[i]);
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--deadline-ms" && i + 1 < argc) {
            char *end = nullptr;
            deadline_ms = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || !(deadline_ms >= 0.0)) {
                std::fprintf(stderr, "%s: bad --deadline-ms '%s': expected "
                             "a non-negative number\n", argv[0], argv[i]);
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--requests" && i + 1 < argc) {
            char *end = nullptr;
            const unsigned long parsed = std::strtoul(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || argv[i][0] == '-' ||
                parsed < 1 || parsed > 1'000'000) {
                std::fprintf(stderr, "%s: bad --requests '%s': expected an "
                             "integer in [1, 1000000]\n", argv[0], argv[i]);
                usage(argv[0]);
                return 2;
            }
            requests = static_cast<unsigned>(parsed);
        } else if (arg == "--burst" && i + 1 < argc) {
            char *end = nullptr;
            burst = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || !(burst >= 1.0)) {
                std::fprintf(stderr, "%s: bad --burst '%s': expected a "
                             "number >= 1\n", argv[0], argv[i]);
                usage(argv[0]);
                return 2;
            }
        } else if ((arg == "--seed" && i + 1 < argc) ||
                   arg.rfind("--seed=", 0) == 0) {
            const char *text =
                arg[6] == '=' ? arg.c_str() + 7 : argv[++i];
            char *end = nullptr;
            const unsigned long long parsed =
                std::strtoull(text, &end, 10);
            if (end == text || *end != '\0' || text[0] == '-') {
                std::fprintf(stderr, "%s: bad --seed '%s': expected a "
                             "non-negative integer\n", argv[0], text);
                usage(argv[0]);
                return 2;
            }
            seed = parsed;
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    LlmEngineConfig config;
    config.system = SystemConfig::pimHbmSystem();
    config.system.numStacks = 1;
    config.decoder = DecoderSpec::tiny();
    config.batcher.policy = policy;
    config.batcher.maxBatch = 8;
    config.timingCache = std::make_shared<serve::ServiceTimeCache>();

    // Decode-heavy serving mix: short prompts, long generations.
    LlmTrafficSpec traffic;
    traffic.tenant = 0;
    traffic.prompt = serve::LengthConfig{64.0, 0.6, 8, 256};
    traffic.output = serve::LengthConfig{192.0, 0.6, 16, 640};
    const serve::LengthSampler prompt_sampler(traffic.prompt);
    const serve::LengthSampler out_sampler(traffic.output);

    // Calibrate the device time one mean-length request demands end to
    // end (prefill is the expensive part a naive token rate hides), so
    // --load is expressed relative to request capacity.
    std::printf("calibrating request demand...\n");
    serve::ShardServiceModel model(config.system,
                                   config.system.numChannels(),
                                   config.timingCache);
    const DecoderSpec &spec = config.decoder;
    const auto prefill_ns = [&](unsigned ctx) {
        const unsigned bucket = ctxBucket(ctx, config.prefillGranule);
        return model.serviceNs(decodeFfnApp(spec), bucket) +
               model.serviceNs(
                   decodeAttnApp(spec, ctxBucket(ctx, config.ctxGranule)),
                   std::max(1u, bucket / 2));
    };
    const double mean_prompt = prompt_sampler.analyticMean();
    const double mean_out = out_sampler.analyticMean();
    const unsigned mid_ctx =
        static_cast<unsigned>(mean_prompt + 0.5 * mean_out);
    const double tok_ns =
        model.serviceNs(decodeFfnApp(spec), config.batcher.maxBatch) /
            config.batcher.maxBatch +
        model.serviceNs(
            decodeAttnApp(spec, ctxBucket(mid_ctx, config.ctxGranule)), 1);
    const double demand_ns =
        prefill_ns(static_cast<unsigned>(mean_prompt)) + mean_out * tok_ns;
    const double capacity_rps = 1e9 / demand_ns;

    if (deadline_ms <= 0.0) {
        const double p95_prompt = prompt_sampler.analyticQuantile(0.95);
        const double p95_out = out_sampler.analyticQuantile(0.95);
        const double tok1_ns =
            model.serviceNs(decodeFfnApp(spec), 1) +
            model.serviceNs(
                decodeAttnApp(spec,
                              ctxBucket(static_cast<unsigned>(p95_prompt +
                                                              p95_out),
                                        config.ctxGranule)),
                1);
        deadline_ms =
            5.0 *
            (prefill_ns(static_cast<unsigned>(p95_prompt)) +
             p95_out * tok1_ns) /
            1e6;
    }
    config.tenants = {LlmTenantSpec{"prod", deadline_ms * 1e6, 0}};

    traffic.ratePerSec = load * capacity_rps;
    const double horizon_ns =
        static_cast<double>(requests) * 1e9 / traffic.ratePerSec;
    serve::BurstSpec burst_window;
    if (burst > 1.0) {
        burst_window.startNs = 0.4 * horizon_ns;
        burst_window.endNs = 0.6 * horizon_ns;
        burst_window.factor = burst;
    }
    const auto arrivals =
        drawLlmTrace({traffic}, horizon_ns, seed, burst_window);

    LlmEngine engine(config);
    TraceSession trace;
    std::unique_ptr<RequestTracer> tracer;
    if (!trace_out.empty()) {
        engine.setTrace(&trace);
        RequestTracerConfig rc;
        rc.headSampleRate = tail_sample;
        rc.seed = seed;
        tracer = std::make_unique<RequestTracer>(rc);
        engine.setRequestTracer(tracer.get());
    }

    // SLO monitor + timeseries share one window grid: 1% of the run.
    const double window_ns = horizon_ns / 100.0;
    SloMonitorConfig slo_config;
    slo_config.target = slo_target;
    slo_config.windowNs = window_ns;
    SloMonitor slo(slo_config);
    MetricsTimeseries timeseries(window_ns);
    if (!timeseries_out.empty()) {
        StatsRegistry &registry = engine.statsRegistry();
        timeseries.trackCounter("completed", registry.group("llm"),
                                "completed");
        timeseries.trackCounter("iterations", registry.group("llm"),
                                "iterations");
        timeseries.trackCounter("kv_blocks_allocated",
                                registry.group("llm.kv"),
                                "blocksAllocated");
        timeseries.trackHistogram("ttft_ns", &engine.ttftHistogram(0));
        timeseries.trackHistogram("e2e_ns", &engine.e2eHistogram(0));
    }

    std::printf("decoder %s on %u channels, policy %s, KV block %u "
                "tokens\n",
                spec.name.c_str(), config.system.numChannels(),
                batchPolicyName(policy), engine.kv().blockTokens());
    std::printf("request demand %.2f ms, capacity %.1f req/s; offered "
                "%.2fx (%.1f req/s), deadline %.1f ms%s\n\n",
                demand_ns / 1e6, capacity_rps, load, traffic.ratePerSec,
                deadline_ms,
                burst > 1.0 ? ", burst window armed" : "");

    // Open loop with window marks: the llm/kv counter groups refresh
    // lazily (report() updates them), so poke them at every boundary
    // for exact per-window attribution.
    double next_mark = window_ns;
    const auto close_windows = [&](double upto) {
        while (next_mark <= upto) {
            engine.advanceTo(next_mark);
            slo.feed(engine.takeSloObservations());
            if (!timeseries_out.empty()) {
                (void)engine.report();
                timeseries.advanceTo(next_mark);
            }
            next_mark += window_ns;
        }
    };
    for (const LlmArrival &a : arrivals) {
        close_windows(a.ns);
        engine.submit(a.tenant, a.ns, a.promptTokens, a.outputTokens);
    }
    close_windows(horizon_ns);
    engine.drain();
    slo.feed(engine.takeSloObservations());
    slo.finish(engine.nowNs());
    if (!timeseries_out.empty()) {
        (void)engine.report();
        timeseries.finish(engine.nowNs());
    }

    const LlmReport r = engine.report();
    r.reconcile();

    if (tracer != nullptr) {
        tracer->flush(trace);
        engine.statsRegistry().retainExemplars(tracer->keptTraceIds());
        trace.registerStats(engine.statsRegistry());
        slo.emitTrace(trace);
    }

    const LlmTenantReport &t = r.total;
    std::printf("completed %llu / %llu (rejected %llu, shed %llu, timed "
                "out %llu)\n",
                static_cast<unsigned long long>(t.completed),
                static_cast<unsigned long long>(t.submitted),
                static_cast<unsigned long long>(t.rejected),
                static_cast<unsigned long long>(t.shed),
                static_cast<unsigned long long>(t.timedOut));
    std::printf("goodput %.0f tok/s (%llu SLO violations), %llu "
                "iterations, mean batch %.2f, %llu preemptions\n",
                t.goodputTokensPerSec,
                static_cast<unsigned long long>(t.sloViolations),
                static_cast<unsigned long long>(r.iterations),
                r.meanBatch,
                static_cast<unsigned long long>(t.preemptions));
    std::printf("KV: %llu blocks allocated, peak resident %llu, %llu "
                "alloc failures\n",
                static_cast<unsigned long long>(r.kvBlocksAllocated),
                static_cast<unsigned long long>(r.kvPeakResidentBlocks),
                static_cast<unsigned long long>(r.kvAllocFailures));
    std::printf("ttft: p50 %.1f ms, p99 %.1f ms\n", t.ttft.p50Ns / 1e6,
                t.ttft.p99Ns / 1e6);
    std::printf("normalized latency (e2e/token): p50 %.2f ms, p99 %.2f "
                "ms\n",
                t.perToken.p50Ns / 1e6, t.perToken.p99Ns / 1e6);
    std::printf("e2e: p50 %.1f ms, p99 %.1f ms, max %.1f ms\n",
                t.e2e.p50Ns / 1e6, t.e2e.p99Ns / 1e6, t.e2e.maxNs / 1e6);

    std::size_t fired = 0;
    for (const auto &tr : slo.transitions())
        fired += tr.firing ? 1 : 0;
    std::printf("slo(%.3f): %llu good / %llu bad over %zu windows, "
                "%zu alert firings\n",
                slo_target,
                static_cast<unsigned long long>(slo.totalGood()),
                static_cast<unsigned long long>(slo.totalBad()),
                slo.numWindows(), fired);
    if (tracer != nullptr) {
        std::printf("tail sampling: kept %zu / %llu traces (%llu "
                    "must-keep, %llu head, %llu slow), %llu events "
                    "flushed\n",
                    tracer->keptTraceIds().size(),
                    static_cast<unsigned long long>(tracer->tracesEnded()),
                    static_cast<unsigned long long>(tracer->mustKeepCount()),
                    static_cast<unsigned long long>(
                        tracer->headSampledCount()),
                    static_cast<unsigned long long>(tracer->slowKeptCount()),
                    static_cast<unsigned long long>(
                        tracer->eventsFlushed()));
    }

    if (!stats_json.empty()) {
        std::ofstream os(stats_json);
        if (!os) {
            std::fprintf(stderr, "%s: cannot open '%s'\n", argv[0],
                         stats_json.c_str());
            return 1;
        }
        // Wrap the registry dump so the seed rides along with the stats
        // (replay provenance), plus the SLO and tail-sampling verdicts.
        os << "{\n  \"seed\": " << seed << ",\n  \"slo\": ";
        {
            JsonWriter w(os);
            slo.writeJson(w);
        }
        if (tracer != nullptr) {
            os << ",\n  \"tail\": ";
            JsonWriter w(os);
            w.beginObject();
            w.field("head_sample_rate", tracer->config().headSampleRate);
            w.field("traces_started", tracer->tracesStarted());
            w.field("traces_ended", tracer->tracesEnded());
            w.field("traces_kept", tracer->keptTraceIds().size());
            w.field("must_keep", tracer->mustKeepCount());
            w.field("head_sampled", tracer->headSampledCount());
            w.field("slow_kept", tracer->slowKeptCount());
            w.field("events_flushed", tracer->eventsFlushed());
            w.field("events_truncated", tracer->eventsTruncated());
            w.endObject();
        }
        os << ",\n  \"stats\": ";
        engine.writeStats(os);
        os << "\n}\n";
    }
    if (!timeseries_out.empty() && !timeseries.writeFile(timeseries_out))
        return 1;
    if (!trace_out.empty() && !trace.writeFile(trace_out))
        return 1;
    return 0;
}
