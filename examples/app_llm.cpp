/**
 * @file
 * LLM decode-serving demo: continuous batching over a paged KV cache
 * on one PIM-HBM stack.
 *
 *   $ ./app_llm                              # continuous batching, load 0.8
 *   $ ./app_llm --policy admit-once          # padded static batches
 *   $ ./app_llm --load 1.0 --deadline-ms 600 # saturate with a tight SLO
 *   $ ./app_llm --burst 4                    # 4x arrival burst mid-run
 *   $ ./app_llm --trace-out=trace.json       # pid-6 iteration/KV timeline
 *   $ ./app_llm --stats-json=stats.json      # stats registry + seed dump
 *
 * Everything is deterministic: the same flags replay identically.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "common/json.h"
#include "common/logging.h"
#include "common/trace.h"
#include "llm/engine.h"
#include "llm/trace_gen.h"
#include "serve/load_gen.h"
#include "serve/service_model.h"

using namespace pimsim;
using namespace pimsim::llm;

namespace {

void
usage(const char *prog)
{
    std::fprintf(stderr,
                 "usage: %s [--policy continuous|admit-once] [--load F]\n"
                 "          [--deadline-ms N] [--requests N] [--burst F]\n"
                 "          [--seed N] [--stats-json=PATH] "
                 "[--trace-out=PATH]\n"
                 "  --policy       batch scheduling policy (default "
                 "continuous)\n"
                 "  --load         offered load relative to request "
                 "capacity, > 0 (default 0.8)\n"
                 "  --deadline-ms  per-request completion SLO, 0 disables "
                 "(default 0 = auto)\n"
                 "  --requests     open-loop arrivals to draw (default "
                 "2000)\n"
                 "  --burst        arrival-rate multiplier for the middle "
                 "20%% of the run, >= 1 (default 1)\n"
                 "  --seed         arrival/length seed (default 1)\n"
                 "  --stats-json=PATH  dump the stats registry (with the "
                 "seed) as JSON\n"
                 "  --trace-out=PATH   Chrome-trace timeline: decode "
                 "iterations and KV\n"
                 "                     occupancy on the pid-6 \"llm\" "
                 "track\n",
                 prog);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    BatchPolicy policy = BatchPolicy::Continuous;
    double load = 0.8;
    double deadline_ms = 0.0; // 0 = auto (5x an unloaded p95 request)
    unsigned requests = 2000;
    double burst = 1.0;
    std::uint64_t seed = 1;
    std::string stats_json;
    std::string trace_out;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--stats-json=", 0) == 0) {
            stats_json = arg.substr(13);
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            trace_out = arg.substr(12);
        } else if (arg == "--policy" && i + 1 < argc) {
            const std::string p = argv[++i];
            if (p == "continuous") {
                policy = BatchPolicy::Continuous;
            } else if (p == "admit-once") {
                policy = BatchPolicy::AdmitOnce;
            } else {
                std::fprintf(stderr, "%s: unknown policy '%s'\n", argv[0],
                             p.c_str());
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--load" && i + 1 < argc) {
            char *end = nullptr;
            load = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || !(load > 0.0)) {
                std::fprintf(stderr, "%s: bad --load '%s': expected a "
                             "positive number\n", argv[0], argv[i]);
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--deadline-ms" && i + 1 < argc) {
            char *end = nullptr;
            deadline_ms = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || !(deadline_ms >= 0.0)) {
                std::fprintf(stderr, "%s: bad --deadline-ms '%s': expected "
                             "a non-negative number\n", argv[0], argv[i]);
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--requests" && i + 1 < argc) {
            char *end = nullptr;
            const unsigned long parsed = std::strtoul(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || argv[i][0] == '-' ||
                parsed < 1 || parsed > 1'000'000) {
                std::fprintf(stderr, "%s: bad --requests '%s': expected an "
                             "integer in [1, 1000000]\n", argv[0], argv[i]);
                usage(argv[0]);
                return 2;
            }
            requests = static_cast<unsigned>(parsed);
        } else if (arg == "--burst" && i + 1 < argc) {
            char *end = nullptr;
            burst = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || !(burst >= 1.0)) {
                std::fprintf(stderr, "%s: bad --burst '%s': expected a "
                             "number >= 1\n", argv[0], argv[i]);
                usage(argv[0]);
                return 2;
            }
        } else if ((arg == "--seed" && i + 1 < argc) ||
                   arg.rfind("--seed=", 0) == 0) {
            const char *text =
                arg[6] == '=' ? arg.c_str() + 7 : argv[++i];
            char *end = nullptr;
            const unsigned long long parsed =
                std::strtoull(text, &end, 10);
            if (end == text || *end != '\0' || text[0] == '-') {
                std::fprintf(stderr, "%s: bad --seed '%s': expected a "
                             "non-negative integer\n", argv[0], text);
                usage(argv[0]);
                return 2;
            }
            seed = parsed;
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    LlmEngineConfig config;
    config.system = SystemConfig::pimHbmSystem();
    config.system.numStacks = 1;
    config.decoder = DecoderSpec::tiny();
    config.batcher.policy = policy;
    config.batcher.maxBatch = 8;
    config.timingCache = std::make_shared<serve::ServiceTimeCache>();

    // Decode-heavy serving mix: short prompts, long generations.
    LlmTrafficSpec traffic;
    traffic.tenant = 0;
    traffic.prompt = serve::LengthConfig{64.0, 0.6, 8, 256};
    traffic.output = serve::LengthConfig{192.0, 0.6, 16, 640};
    const serve::LengthSampler prompt_sampler(traffic.prompt);
    const serve::LengthSampler out_sampler(traffic.output);

    // Calibrate the device time one mean-length request demands end to
    // end (prefill is the expensive part a naive token rate hides), so
    // --load is expressed relative to request capacity.
    std::printf("calibrating request demand...\n");
    serve::ShardServiceModel model(config.system,
                                   config.system.numChannels(),
                                   config.timingCache);
    const DecoderSpec &spec = config.decoder;
    const auto prefill_ns = [&](unsigned ctx) {
        const unsigned bucket = ctxBucket(ctx, config.prefillGranule);
        return model.serviceNs(decodeFfnApp(spec), bucket) +
               model.serviceNs(
                   decodeAttnApp(spec, ctxBucket(ctx, config.ctxGranule)),
                   std::max(1u, bucket / 2));
    };
    const double mean_prompt = prompt_sampler.analyticMean();
    const double mean_out = out_sampler.analyticMean();
    const unsigned mid_ctx =
        static_cast<unsigned>(mean_prompt + 0.5 * mean_out);
    const double tok_ns =
        model.serviceNs(decodeFfnApp(spec), config.batcher.maxBatch) /
            config.batcher.maxBatch +
        model.serviceNs(
            decodeAttnApp(spec, ctxBucket(mid_ctx, config.ctxGranule)), 1);
    const double demand_ns =
        prefill_ns(static_cast<unsigned>(mean_prompt)) + mean_out * tok_ns;
    const double capacity_rps = 1e9 / demand_ns;

    if (deadline_ms <= 0.0) {
        const double p95_prompt = prompt_sampler.analyticQuantile(0.95);
        const double p95_out = out_sampler.analyticQuantile(0.95);
        const double tok1_ns =
            model.serviceNs(decodeFfnApp(spec), 1) +
            model.serviceNs(
                decodeAttnApp(spec,
                              ctxBucket(static_cast<unsigned>(p95_prompt +
                                                              p95_out),
                                        config.ctxGranule)),
                1);
        deadline_ms =
            5.0 *
            (prefill_ns(static_cast<unsigned>(p95_prompt)) +
             p95_out * tok1_ns) /
            1e6;
    }
    config.tenants = {LlmTenantSpec{"prod", deadline_ms * 1e6, 0}};

    traffic.ratePerSec = load * capacity_rps;
    const double horizon_ns =
        static_cast<double>(requests) * 1e9 / traffic.ratePerSec;
    serve::BurstSpec burst_window;
    if (burst > 1.0) {
        burst_window.startNs = 0.4 * horizon_ns;
        burst_window.endNs = 0.6 * horizon_ns;
        burst_window.factor = burst;
    }
    const auto arrivals =
        drawLlmTrace({traffic}, horizon_ns, seed, burst_window);

    LlmEngine engine(config);
    TraceSession trace;
    if (!trace_out.empty())
        engine.setTrace(&trace);

    std::printf("decoder %s on %u channels, policy %s, KV block %u "
                "tokens\n",
                spec.name.c_str(), config.system.numChannels(),
                batchPolicyName(policy), engine.kv().blockTokens());
    std::printf("request demand %.2f ms, capacity %.1f req/s; offered "
                "%.2fx (%.1f req/s), deadline %.1f ms%s\n\n",
                demand_ns / 1e6, capacity_rps, load, traffic.ratePerSec,
                deadline_ms,
                burst > 1.0 ? ", burst window armed" : "");

    const LlmReport r = runOpenLoop(engine, arrivals);
    r.reconcile();

    const LlmTenantReport &t = r.total;
    std::printf("completed %llu / %llu (rejected %llu, shed %llu, timed "
                "out %llu)\n",
                static_cast<unsigned long long>(t.completed),
                static_cast<unsigned long long>(t.submitted),
                static_cast<unsigned long long>(t.rejected),
                static_cast<unsigned long long>(t.shed),
                static_cast<unsigned long long>(t.timedOut));
    std::printf("goodput %.0f tok/s (%llu SLO violations), %llu "
                "iterations, mean batch %.2f, %llu preemptions\n",
                t.goodputTokensPerSec,
                static_cast<unsigned long long>(t.sloViolations),
                static_cast<unsigned long long>(r.iterations),
                r.meanBatch,
                static_cast<unsigned long long>(t.preemptions));
    std::printf("KV: %llu blocks allocated, peak resident %llu, %llu "
                "alloc failures\n",
                static_cast<unsigned long long>(r.kvBlocksAllocated),
                static_cast<unsigned long long>(r.kvPeakResidentBlocks),
                static_cast<unsigned long long>(r.kvAllocFailures));
    std::printf("ttft: p50 %.1f ms, p99 %.1f ms\n", t.ttft.p50Ns / 1e6,
                t.ttft.p99Ns / 1e6);
    std::printf("normalized latency (e2e/token): p50 %.2f ms, p99 %.2f "
                "ms\n",
                t.perToken.p50Ns / 1e6, t.perToken.p99Ns / 1e6);
    std::printf("e2e: p50 %.1f ms, p99 %.1f ms, max %.1f ms\n",
                t.e2e.p50Ns / 1e6, t.e2e.p99Ns / 1e6, t.e2e.maxNs / 1e6);

    if (!stats_json.empty()) {
        std::ofstream os(stats_json);
        if (!os) {
            std::fprintf(stderr, "%s: cannot open '%s'\n", argv[0],
                         stats_json.c_str());
            return 1;
        }
        // Wrap the registry dump so the seed rides along with the stats
        // (replay provenance).
        os << "{\n  \"seed\": " << seed << ",\n  \"stats\": ";
        engine.writeStats(os);
        os << "\n}\n";
    }
    if (!trace_out.empty() && !trace.writeFile(trace_out))
        return 1;
    return 0;
}
