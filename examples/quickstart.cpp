/**
 * @file
 * Quickstart: element-wise vector addition on simulated PIM-HBM.
 *
 * Mirrors the paper's drop-in story: build the system, hand vectors to
 * PIM BLAS, and get results plus cycle-accurate timing back — no
 * knowledge of banks, rows, modes or microkernels required.
 *
 *   $ ./quickstart
 */

#include <cstdio>

#include "common/logging.h"
#include "common/rng.h"
#include "stack/blas.h"
#include "stack/reference.h"

using namespace pimsim;

int
main()
{
    setQuiet(true);

    // The paper's evaluation system: four PIM-HBM stacks (64 pseudo
    // channels, 512 PIM execution units) behind an unmodified host.
    PimSystem system(SystemConfig::pimHbmSystem());
    PimBlas blas(system);

    std::printf("PIM-HBM system: %u channels, %u PIM units, "
                "%.3f TB/s on-chip compute bandwidth\n",
                system.numChannels(),
                system.numChannels() * system.config().pim.unitsPerPch,
                system.config().onChipBandwidthGBs() / 1000.0);

    // Two million-element FP16 vectors.
    const std::size_t n = 1u << 20;
    Rng rng(42);
    Fp16Vector a(n), b(n), sum;
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.nextFp16();
        b[i] = rng.nextFp16();
    }

    // One call: places operands bank-aligned (Fig. 15), loads the
    // microkernel into every CRF, enters AB-PIM mode, streams the
    // column commands, and reads the result back.
    const BlasTiming t = blas.add(a, b, sum);

    // Verify against the bit-exact host reference.
    const Fp16Vector expected = refAdd(a, b);
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < n; ++i)
        mismatches += sum[i].bits() != expected[i].bits();

    std::printf("added %zu FP16 elements on PIM\n", n);
    std::printf("  kernel time: %.2f us (%llu DRAM commands, %llu "
                "fences)\n",
                t.ns / 1000.0, static_cast<unsigned long long>(t.commands),
                static_cast<unsigned long long>(t.fences));
    std::printf("  effective on-chip bandwidth: %.1f GB/s\n",
                3.0 * 2.0 * static_cast<double>(n) / t.ns);
    std::printf("  mismatches vs host reference: %zu %s\n", mismatches,
                mismatches == 0 ? "(bit-exact)" : "(BUG!)");
    return mismatches == 0 ? 0 : 1;
}
