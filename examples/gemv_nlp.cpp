/**
 * @file
 * GEMV acceleration for NLP-style layers (the paper's headline case).
 *
 * Runs the Table VI GEMV microbenchmarks through both the PIM path and
 * the host model, reproducing the memory-bound level-2 BLAS story of
 * Sections II-A and VII-B: the stock host GEMV cannot feed the compute
 * units, while PIM streams the matrix at bank bandwidth.
 *
 *   $ ./gemv_nlp [batch]
 */

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/rng.h"
#include "host/host_model.h"
#include "stack/blas.h"
#include "stack/reference.h"
#include "stack/workloads.h"

using namespace pimsim;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const unsigned batch =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 1;

    PimSystem pim_system(SystemConfig::pimHbmSystem());
    PimBlas blas(pim_system);

    PimSystem hbm_system(SystemConfig::hbmSystem());
    HostModel host(hbm_system);

    std::printf("GEMV on PIM-HBM vs stock host kernel (batch %u)\n\n",
                batch);
    std::printf("%-8s %-12s %-12s %-12s %-10s %-10s\n", "name", "shape",
                "host", "PIM", "speedup", "correct");

    for (const auto &micro : table6Microbenchmarks()) {
        if (micro.kind != MicroKind::Gemv)
            continue;

        Rng rng(7 ^ micro.m);
        Fp16Vector w(std::size_t{micro.m} * micro.n);
        Fp16Vector x(micro.n);
        for (auto &v : w)
            v = rng.nextFp16();
        for (auto &v : x)
            v = rng.nextFp16();

        // PIM: real command-level execution (one batch element at a
        // time — PIM has no cache to blame for reuse).
        Fp16Vector y;
        const BlasTiming t = blas.gemv(w, micro.m, micro.n, x, y);
        const double pim_ns = batch * t.totalNs();

        // Host: issue-rate-limited stock kernel.
        const HostKernelResult h = host.gemv(micro.m, micro.n, batch);

        const Fp16Vector expected = refGemv(w, micro.m, micro.n, x);
        bool exact = true;
        for (unsigned i = 0; i < micro.m; ++i)
            exact = exact && y[i].bits() == expected[i].bits();

        char shape[32];
        std::snprintf(shape, sizeof(shape), "%ux%u", micro.m, micro.n);
        std::printf("%-8s %-12s %-9.1f us %-9.1f us %-10.2f %-10s\n",
                    micro.name.c_str(), shape, h.ns / 1000.0,
                    pim_ns / 1000.0, h.ns / pim_ns,
                    exact ? "bit-exact" : "MISMATCH");
    }

    std::printf("\nThe speedup falls as batch grows (try batch 4): "
                "batching turns level-2 BLAS\ninto level-3 BLAS and the "
                "host stops being memory-bound (Section VII-B).\n");
    return 0;
}
