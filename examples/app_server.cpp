/**
 * @file
 * Multi-tenant PIM inference server demo: two tenants (GNMT and DS2)
 * share one PIM-HBM stack behind the serving layer — bounded admission
 * queue, batching scheduler, optional channel sharding — under an
 * open-loop Poisson load.
 *
 *   $ ./app_server                    # batch policy, shared channels
 *   $ ./app_server --policy fair      # weighted fair share
 *   $ ./app_server --shard            # tenants pinned to channel shards
 *   $ ./app_server --load 2.0         # 2x the batch-1 capacity
 *   $ ./app_server --deadline-ms 2000 --fault-rate 5 --breaker
 *                                     # resilient serving under chaos
 *
 * Everything is deterministic: the same flags replay identically.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "common/json.h"
#include "common/logging.h"
#include "common/trace.h"
#include "serve/chaos.h"
#include "serve/load_gen.h"
#include "serve/serving_engine.h"

using namespace pimsim;
using namespace pimsim::serve;

namespace {

void
usage(const char *prog)
{
    std::fprintf(stderr,
                 "usage: %s [--policy fcfs|batch|fair] [--shard] "
                 "[--load FACTOR] [--seed N]\n"
                 "          [--deadline-ms MS] [--fault-rate R] "
                 "[--retries N] [--breaker]\n"
                 "          [--stats-json=PATH] [--trace-out=PATH]\n"
                 "  --policy  scheduling policy (default batch)\n"
                 "  --shard   pin tenants to disjoint channel/row shards\n"
                 "  --load    offered load relative to batch-1 capacity, "
                 "> 0 (default 1.0)\n"
                 "  --seed    arrival-stream seed (default 1)\n"
                 "  --deadline-ms  per-request completion deadline in ms, "
                 ">= 0; 0 disables (default 0)\n"
                 "  --fault-rate   uncorrectable fault events per second "
                 "per shard, >= 0 (default 0)\n"
                 "  --retries      PIM retry budget per failed batch, "
                 ">= 0 (default 2)\n"
                 "  --breaker      enable the per-shard circuit breaker\n"
                 "  --slo-target F     SLO monitor good-fraction target, "
                 "in (0, 1) (default 0.99)\n"
                 "  --stats-json=PATH  dump the system stats registry "
                 "(serving counters, latency histograms, SLO summary) as "
                 "JSON\n"
                 "  --trace-out=PATH   write a Chrome-trace timeline of "
                 "batch dispatches per shard,\n"
                 "                     sampled per-request span trees and "
                 "SLO alert instants\n"
                 "  --timeseries-out=PATH  windowed latency percentiles "
                 "per tenant\n",
                 prog);
}

std::string
fmtMs(double ns)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%8.1f", ns / 1e6);
    return buf;
}

void
printTenant(const TenantReport &t)
{
    std::printf("  %-6s %7llu %7llu %7llu %8.2f %s %s %s\n", t.name.c_str(),
                static_cast<unsigned long long>(t.submitted),
                static_cast<unsigned long long>(t.rejected),
                static_cast<unsigned long long>(t.batches), t.throughputRps,
                fmtMs(t.e2e.p50Ns).c_str(), fmtMs(t.e2e.p95Ns).c_str(),
                fmtMs(t.e2e.p99Ns).c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    SchedPolicy policy = SchedPolicy::BatchTimeout;
    bool shard = false;
    double load = 1.0;
    std::uint64_t seed = 1;
    double deadline_ms = 0.0;
    double fault_rate = 0.0;
    unsigned retries = 2;
    bool breaker = false;
    double slo_target = 0.99;
    std::string stats_json;
    std::string trace_out;
    std::string timeseries_out;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--stats-json=", 0) == 0) {
            stats_json = arg.substr(13);
        } else if (arg.rfind("--trace-out=", 0) == 0) {
            trace_out = arg.substr(12);
        } else if (arg.rfind("--timeseries-out=", 0) == 0) {
            timeseries_out = arg.substr(17);
        } else if ((arg == "--slo-target" && i + 1 < argc) ||
                   arg.rfind("--slo-target=", 0) == 0) {
            const char *text =
                arg.size() > 12 && arg[12] == '=' ? arg.c_str() + 13
                                                  : argv[++i];
            char *end = nullptr;
            slo_target = std::strtod(text, &end);
            if (end == text || *end != '\0' || !(slo_target > 0.0) ||
                !(slo_target < 1.0)) {
                std::fprintf(stderr, "%s: bad --slo-target '%s': expected "
                             "a number in (0, 1)\n", argv[0], text);
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--shard") {
            shard = true;
        } else if (arg == "--policy" && i + 1 < argc) {
            const std::string p = argv[++i];
            if (p == "fcfs") {
                policy = SchedPolicy::Fcfs;
            } else if (p == "batch") {
                policy = SchedPolicy::BatchTimeout;
            } else if (p == "fair") {
                policy = SchedPolicy::FairShare;
            } else {
                std::fprintf(stderr, "%s: unknown policy '%s'\n", argv[0],
                             p.c_str());
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--load" && i + 1 < argc) {
            char *end = nullptr;
            load = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || !(load > 0.0)) {
                std::fprintf(stderr, "%s: bad --load '%s': expected a "
                             "positive number\n", argv[0], argv[i]);
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--deadline-ms" && i + 1 < argc) {
            char *end = nullptr;
            deadline_ms = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || !(deadline_ms >= 0.0)) {
                std::fprintf(stderr, "%s: bad --deadline-ms '%s': expected "
                             "a non-negative number\n", argv[0], argv[i]);
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--fault-rate" && i + 1 < argc) {
            char *end = nullptr;
            fault_rate = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || !(fault_rate >= 0.0)) {
                std::fprintf(stderr, "%s: bad --fault-rate '%s': expected "
                             "a non-negative number\n", argv[0], argv[i]);
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--retries" && i + 1 < argc) {
            char *end = nullptr;
            const unsigned long parsed = std::strtoul(argv[++i], &end, 10);
            if (end == argv[i] || *end != '\0' || argv[i][0] == '-' ||
                parsed > 64) {
                std::fprintf(stderr, "%s: bad --retries '%s': expected an "
                             "integer in [0, 64]\n", argv[0], argv[i]);
                usage(argv[0]);
                return 2;
            }
            retries = static_cast<unsigned>(parsed);
        } else if (arg == "--breaker") {
            breaker = true;
        } else if ((arg == "--seed" && i + 1 < argc) ||
                   arg.rfind("--seed=", 0) == 0) {
            const char *text =
                arg[6] == '=' ? arg.c_str() + 7 : argv[++i];
            char *end = nullptr;
            const unsigned long long parsed =
                std::strtoull(text, &end, 10);
            if (end == text || *end != '\0' || text[0] == '-') {
                std::fprintf(stderr, "%s: bad --seed '%s': expected a "
                             "non-negative integer\n", argv[0], text);
                usage(argv[0]);
                return 2;
            }
            seed = parsed;
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    ServeConfig config;
    config.system = SystemConfig::pimHbmSystem();
    config.system.numStacks = 1;
    config.tenants = {TenantSpec{"gnmt", gnmtApp(), 1.0},
                      TenantSpec{"ds2", ds2App(), 1.0}};
    config.shardChannels = shard;
    config.sched.policy = policy;
    config.sched.maxBatch = 8;
    config.histBucketNs = 2'000'000; // seconds-scale tails stay resolvable
    config.histBuckets = 16384;
    config.timingCache = std::make_shared<ServiceTimeCache>();
    for (auto &t : config.tenants)
        t.deadlineNs = deadline_ms * 1e6;
    config.retry.maxRetries = retries;
    config.breaker.enabled = breaker;

    // Calibrate the batch-1 capacity of the device the tenants share (or
    // of their shards) to express --load in device-relative terms.
    std::printf("calibrating batch-1 service times...\n");
    ShardServiceModel probe(config.system, 16, config.timingCache);
    double mean_svc_ns = 0.0;
    for (const auto &t : config.tenants)
        mean_svc_ns += probe.serviceNs(t.app, 1);
    mean_svc_ns /= static_cast<double>(config.tenants.size());
    config.sched.batchTimeoutNs = mean_svc_ns;
    const double capacity_rps = 1e9 / mean_svc_ns;

    ServingEngine engine(config);
    TraceSession trace;
    std::unique_ptr<RequestTracer> tracer;
    if (!trace_out.empty()) {
        engine.setTrace(&trace);
        RequestTracerConfig rc;
        rc.seed = seed;
        tracer = std::make_unique<RequestTracer>(rc);
        engine.setRequestTracer(tracer.get());
    }

    ChaosConfig chaos_config;
    chaos_config.faultsPerSec = fault_rate;
    chaos_config.seed = seed ^ 0xc4a05;
    ChaosCampaign chaos(chaos_config, engine.plan().numShards());
    if (fault_rate > 0.0)
        engine.setFaultModel(&chaos);

    std::printf("serving %zu tenants on %u channels, policy %s%s\n",
                config.tenants.size(), engine.system().numChannels(),
                schedPolicyName(policy), shard ? ", sharded" : "");
    if (deadline_ms > 0.0 || fault_rate > 0.0)
        std::printf("resilience: deadline %.1f ms, fault rate %.1f /s, "
                    "retries %u, breaker %s\n",
                    deadline_ms, fault_rate, retries,
                    breaker ? "on" : "off");
    if (engine.plan().isSharded()) {
        for (unsigned t = 0; t < engine.numTenants(); ++t) {
            const ShardSpec &s =
                engine.plan().shard(engine.plan().shardOf(t));
            std::printf("  tenant %-6s -> channels [%u, %u), rows [%u, %u)"
                        " (driver capacity %u rows)\n",
                        config.tenants[t].name.c_str(), s.firstChannel,
                        s.firstChannel + s.numChannels, s.firstRow,
                        s.firstRow + s.numRows,
                        engine.tenantDriver(t).capacityRows());
        }
    }

    const double horizon_ns = 100.0 * mean_svc_ns;
    std::vector<ArrivalSpec> specs;
    for (unsigned t = 0; t < engine.numTenants(); ++t)
        specs.push_back(ArrivalSpec{
            t, load * capacity_rps /
                   static_cast<double>(engine.numTenants())});
    const auto arrivals = poissonArrivals(specs, horizon_ns, seed);

    std::printf("offered load %.2fx capacity (%.1f req/s total) over "
                "%.1f s of virtual time, %zu arrivals\n\n",
                load, load * capacity_rps, horizon_ns / 1e9,
                arrivals.size());

    // SLO monitor + timeseries share one window grid: 2% of the run.
    const double window_ns = horizon_ns / 50.0;
    SloMonitorConfig slo_config;
    slo_config.target = slo_target;
    slo_config.windowNs = window_ns;
    SloMonitor slo(slo_config);
    MetricsTimeseries timeseries(window_ns);
    if (!timeseries_out.empty()) {
        StatsRegistry &registry = engine.system().statsRegistry();
        for (const auto &t : config.tenants) {
            const std::string base = "serve.tenant." + t.name;
            timeseries.trackHistogram(t.name + "_e2e_ns",
                                      registry.histogram(base + ".e2eNs"));
            timeseries.trackHistogram(
                t.name + "_queue_ns",
                registry.histogram(base + ".queueNs"));
        }
    }

    double next_mark = window_ns;
    const auto close_windows = [&](double upto) {
        while (next_mark <= upto) {
            engine.advanceTo(next_mark);
            slo.feed(engine.takeSloObservations());
            if (!timeseries_out.empty())
                timeseries.advanceTo(next_mark);
            next_mark += window_ns;
        }
    };
    for (const Arrival &a : arrivals) {
        close_windows(a.ns);
        engine.submit(a.tenant, a.ns);
    }
    close_windows(horizon_ns);
    engine.drain();
    slo.feed(engine.takeSloObservations());
    slo.finish(engine.nowNs());
    if (!timeseries_out.empty())
        timeseries.finish(engine.nowNs());

    const ServeReport report = engine.report();
    report.reconcile();

    if (tracer != nullptr) {
        tracer->flush(trace);
        engine.system().statsRegistry().retainExemplars(
            tracer->keptTraceIds());
        trace.registerStats(engine.system().statsRegistry());
        slo.emitTrace(trace);
    }

    std::printf("  %-6s %7s %7s %7s %8s %8s %8s %8s\n", "tenant", "submit",
                "reject", "batch", "rps", "p50(ms)", "p95(ms)", "p99(ms)");
    for (const auto &t : report.tenants)
        printTenant(t);
    printTenant(report.total);
    std::printf("\nvirtual horizon %.2f s; device time per tenant: ",
                report.horizonNs / 1e9);
    for (const auto &t : report.tenants)
        std::printf("%s %.2fs  ", t.name.c_str(), t.servedNs / 1e9);
    std::printf("\n");

    if (deadline_ms > 0.0 || fault_rate > 0.0) {
        const auto &t = report.total;
        std::printf("resilience: shed %llu, timed out %llu, retries %llu, "
                    "host fallback %llu, SLO violations %llu\n",
                    static_cast<unsigned long long>(t.shed),
                    static_cast<unsigned long long>(t.timedOut),
                    static_cast<unsigned long long>(t.retries),
                    static_cast<unsigned long long>(t.fallbackCompleted),
                    static_cast<unsigned long long>(t.sloViolations));
        for (const auto &s : report.shards) {
            if (s.opens || s.batchFaults)
                std::printf("  shard%u: %llu batch faults, breaker %s "
                            "(%llu opens, %llu probes, %llu closes)\n",
                            s.shard,
                            static_cast<unsigned long long>(s.batchFaults),
                            breakerStateName(s.state),
                            static_cast<unsigned long long>(s.opens),
                            static_cast<unsigned long long>(s.probes),
                            static_cast<unsigned long long>(s.closes));
        }
    }

    std::size_t fired = 0;
    for (const auto &tr : slo.transitions())
        fired += tr.firing ? 1 : 0;
    std::printf("slo(%.3f): %llu good / %llu bad over %zu windows, "
                "%zu alert firings\n",
                slo_target,
                static_cast<unsigned long long>(slo.totalGood()),
                static_cast<unsigned long long>(slo.totalBad()),
                slo.numWindows(), fired);
    if (tracer != nullptr) {
        std::printf("tail sampling: kept %zu / %llu traces (%llu "
                    "must-keep, %llu head, %llu slow)\n",
                    tracer->keptTraceIds().size(),
                    static_cast<unsigned long long>(tracer->tracesEnded()),
                    static_cast<unsigned long long>(tracer->mustKeepCount()),
                    static_cast<unsigned long long>(
                        tracer->headSampledCount()),
                    static_cast<unsigned long long>(
                        tracer->slowKeptCount()));
    }

    if (!stats_json.empty()) {
        std::ofstream os(stats_json);
        if (!os) {
            PIMSIM_FATAL("cannot open stats output '", stats_json, "'");
        }
        // Record the seed alongside the registry dump so a run's stats
        // identify the arrival/chaos stream that produced them.
        os << "{\"seed\": " << seed << ", \"slo\": ";
        {
            JsonWriter w(os);
            slo.writeJson(w);
        }
        os << ", \"stats\": ";
        engine.system().dumpStatsJson(os);
        os << "}\n";
    }
    if (!timeseries_out.empty() && !timeseries.writeFile(timeseries_out))
        return 1;
    if (!trace_out.empty() && !trace.writeFile(trace_out))
        return 1;
    return 0;
}
