/**
 * @file
 * Low-level PIM programming: hand-written microkernels and raw DRAM
 * command streams.
 *
 * Everything the PIM BLAS does under the hood, spelled out: mode
 * transitions via ACT/PRE to the PIM_CONF rows (Fig. 3), CRF loading
 * through register-mapped writes, AAM-indexed instructions triggered by
 * column commands (Fig. 5), and result readback. Useful as a template
 * for writing new PIM kernels.
 *
 *   $ ./microkernel_playground
 */

#include <cstdio>

#include "common/logging.h"
#include "pim/pim_channel.h"
#include "stack/driver.h"
#include "stack/pim_program.h"

using namespace pimsim;

int
main()
{
    setQuiet(true);
    SystemConfig cfg = SystemConfig::pimHbmSystem();
    cfg.numStacks = 1; // one stack is plenty for a demo
    PimSystem system(cfg);
    PimDriver driver(system);
    PimChannel *pim = system.controller(0).pim();
    const PimConfMap conf = pim->confMap();

    // ---- 1. the microkernel: out = ReLU(a * b), element-wise ----
    // a streams from the even bank, b from the odd bank; AAM walks the
    // GRF with the column address so one instruction covers 8 columns.
    const std::vector<PimInst> kernel = {
        PimInst::fill(OperandSpace::GrfA, 0, OperandSpace::EvenBank, 0,
                      /*aam=*/true),
        PimInst::jump(1, 8),
        PimInst::mul(OperandSpace::GrfA, 0, OperandSpace::GrfA, 0,
                     OperandSpace::OddBank, 0, /*aam=*/true),
        PimInst::jump(1, 8),
        PimInst::mov(OperandSpace::EvenBank, 0, OperandSpace::GrfA, 0,
                     /*relu=*/true, /*aam=*/true),
        PimInst::jump(1, 8),
        PimInst::exit(),
    };

    std::printf("microkernel (%zu CRF slots):\n", kernel.size());
    for (std::size_t i = 0; i < kernel.size(); ++i)
        std::printf("  %2zu: 0x%08x  %s\n", i, kernel[i].encode(),
                    kernel[i].disassemble().c_str());

    // ---- 2. stage operands: 8 bursts in every unit's bank pair ----
    PimRowBlock rows;
    if (driver.allocRows(1, rows) != PimStatus::Ok) {
        std::printf("no free PIM rows\n");
        return 1;
    }
    const unsigned row = rows.firstRow;
    for (unsigned ch = 0; ch < system.numChannels(); ++ch) {
        for (unsigned u = 0; u < cfg.pim.unitsPerPch; ++u) {
            for (unsigned col = 0; col < 8; ++col) {
                LaneVector a, b;
                for (unsigned lane = 0; lane < kSimdLanes; ++lane) {
                    // Alternate signs so ReLU has something to clip.
                    const float sign = (lane + col) % 2 ? -1.0f : 1.0f;
                    a[lane] = Fp16(sign * 0.5f * (lane + 1));
                    b[lane] = Fp16(0.25f * (col + 1));
                }
                driver.preload(ch, 2 * u, row, col, lanesToBurst(a));
                driver.preload(ch, 2 * u + 1, row, col, lanesToBurst(b));
            }
        }
    }

    // ---- 3. the command stream (identical on every channel) ----
    ChannelProgram prog;
    ProgramBuilder builder(prog);
    builder.prechargeAll();
    builder.activate(conf.abmrRow); // SB -> AB
    builder.precharge();
    builder.fence();

    Burst crf_bursts[1] = {};
    for (std::size_t i = 0; i < kernel.size(); ++i) {
        const std::uint32_t w = kernel[i].encode();
        for (unsigned byte = 0; byte < 4; ++byte)
            crf_bursts[0][4 * i + byte] =
                static_cast<std::uint8_t>((w >> (8 * byte)) & 0xff);
    }
    builder.write(conf.configRow, 0, crf_bursts[0]); // CRF[0..7]
    Burst arm{};
    arm[0] = 1;
    const auto [op_row, op_col] = pim->configAddr(pim->opModeCol());
    builder.write(op_row, op_col, arm); // PIM_OP_MODE = 1
    builder.prechargeAll();
    builder.fence();

    // Trigger stream: 8 RD (FILL a), 8 RD (MUL b), 8 WR (store out).
    for (unsigned col = 0; col < 8; ++col)
        builder.read(row, col);
    builder.fence();
    for (unsigned col = 0; col < 8; ++col)
        builder.read(row, col);
    builder.fence();
    for (unsigned col = 0; col < 8; ++col)
        builder.write(row, 16 + col, Burst{});
    builder.fence();

    builder.prechargeAll();
    builder.write(op_row, op_col, Burst{}); // PIM_OP_MODE = 0
    builder.prechargeAll();
    builder.activate(conf.sbmrRow); // AB -> SB
    builder.precharge();
    builder.fence();

    const PimRunResult run =
        runPimProgramReplicated(system, prog, system.numChannels());
    std::printf("\nran %llu commands in %llu bus cycles (%.0f ns)\n",
                static_cast<unsigned long long>(run.commands),
                static_cast<unsigned long long>(run.cycles), run.ns);
    std::printf("final mode: %s (back to standard DRAM)\n",
                pimModeName(pim->mode()));

    // ---- 4. verify: out = ReLU(a * b), negatives clipped ----
    unsigned checked = 0, wrong = 0;
    for (unsigned col = 0; col < 8; ++col) {
        const LaneVector out =
            burstToLanes(driver.peek(0, 0, row, 16 + col));
        for (unsigned lane = 0; lane < kSimdLanes; ++lane) {
            const float sign = (lane + col) % 2 ? -1.0f : 1.0f;
            const Fp16 a(sign * 0.5f * (lane + 1));
            const Fp16 b(0.25f * (col + 1));
            const Fp16 expect = fp16Relu(fp16Mul(a, b));
            ++checked;
            wrong += out[lane].bits() != expect.bits();
        }
    }
    std::printf("verified %u lanes, %u wrong %s\n", checked, wrong,
                wrong == 0 ? "(bit-exact)" : "(BUG!)");

    std::printf("\nsample output burst (col 16): ");
    const LaneVector sample = burstToLanes(driver.peek(0, 0, row, 16));
    for (unsigned lane = 0; lane < 8; ++lane)
        std::printf("%.2f ", sample[lane].toFloat());
    std::printf("...\n");
    return wrong == 0 ? 0 : 1;
}
