/**
 * @file
 * Speech-recognition LSTM on PIM via the framework custom ops.
 *
 * Runs a DeepSpeech2-style LSTM layer end to end through the PIM LSTM
 * custom op (Section V-A, Fig. 7): the fused gate GEMV executes on the
 * simulated PIM units, activations and the cell update on the host —
 * and the whole sequence is verified bit-exactly against the host-only
 * reference.
 *
 *   $ ./lstm_speech [hidden] [timesteps]
 */

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/rng.h"
#include "stack/framework.h"

using namespace pimsim;

int
main(int argc, char **argv)
{
    setQuiet(true);
    const unsigned hidden =
        argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 256;
    const unsigned steps =
        argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 20;

    PimSystem system(SystemConfig::pimHbmSystem());
    PimOps ops(system);

    // Random weights for one LSTM layer (fused 4H x (In+H) gate matrix).
    Rng rng(2026);
    LstmWeights weights;
    weights.hidden = hidden;
    weights.input = hidden;
    weights.w.resize(std::size_t{4} * hidden * (2 * hidden));
    weights.bias.resize(4 * hidden);
    for (auto &v : weights.w)
        v = Fp16(rng.nextFloat(-0.08f, 0.08f));
    for (auto &v : weights.bias)
        v = Fp16(rng.nextFloat(-0.05f, 0.05f));

    // A spectrogram-like input sequence.
    std::vector<Fp16Vector> inputs(steps, Fp16Vector(hidden));
    for (auto &frame : inputs)
        for (auto &v : frame)
            v = Fp16(rng.nextFloat(-1.0f, 1.0f));

    std::printf("LSTM layer: hidden %u, %u timesteps, gate GEMV "
                "%ux%u on PIM\n",
                hidden, steps, 4 * hidden, 2 * hidden);

    const auto outputs = ops.lstm(weights, inputs);
    const auto expected = refLstm(weights, inputs);

    std::size_t mismatches = 0;
    for (unsigned t = 0; t < steps; ++t)
        for (unsigned j = 0; j < hidden; ++j)
            mismatches += outputs[t][j].bits() != expected[t][j].bits();

    const OpProfile &profile = ops.profile();
    std::printf("  PIM kernel time: %.1f us over %llu kernel calls\n",
                profile.pimNs / 1000.0,
                static_cast<unsigned long long>(profile.pimKernelCalls));
    std::printf("  hidden-state sample h[last][0..3] = %.4f %.4f %.4f "
                "%.4f\n",
                outputs.back()[0].toFloat(), outputs.back()[1].toFloat(),
                outputs.back()[2].toFloat(), outputs.back()[3].toFloat());
    std::printf("  mismatches vs host-only reference: %zu %s\n",
                mismatches, mismatches == 0 ? "(bit-exact)" : "(BUG!)");
    return mismatches == 0 ? 0 : 1;
}
