/**
 * @file
 * Fault-tolerant cluster demo: M replicated PIM hosts behind a
 * health-driven router, under an open-loop Poisson load with optional
 * injected faults.
 *
 *   $ ./app_cluster                        # 4 hosts x 4 stacks, no faults
 *   $ ./app_cluster --kill                 # host 0 dies mid-run, fails over
 *   $ ./app_cluster --straggler 8 --hedge  # slow host, hedged requests
 *   $ ./app_cluster --kill --no-failover   # the naive cluster, for contrast
 *   $ ./app_cluster --trace-out=trace.json # pid-5 health/hedge timeline
 *
 * Everything is deterministic: the same flags replay identically.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "cluster/cluster_engine.h"
#include "common/json.h"
#include "common/logging.h"
#include "common/reqtrace.h"
#include "common/slo.h"
#include "common/trace.h"
#include "serve/chaos.h"
#include "serve/load_gen.h"

using namespace pimsim;
using namespace pimsim::cluster;

namespace {

void
usage(const char *prog)
{
    std::fprintf(stderr,
                 "usage: %s [--hosts N] [--stacks N] [--load FACTOR] "
                 "[--seed N]\n"
                 "          [--kill] [--straggler FACTOR] [--hedge] "
                 "[--no-failover]\n"
                 "          [--slo-target F] [--json-out=PATH] "
                 "[--trace-out=PATH]\n"
                 "          [--timeseries-out=PATH]\n"
                 "  --hosts      replicated hosts, >= 1 (default 4)\n"
                 "  --stacks     PIM stacks per host, >= 1 (default 4)\n"
                 "  --load       offered load relative to cluster "
                 "capacity, > 0 (default 0.6)\n"
                 "  --seed       arrival/chaos seed (default 1)\n"
                 "  --kill       crash host 0 for the middle 30%% of the "
                 "run\n"
                 "  --straggler  slow host 0 by FACTOR (>= 1) for the "
                 "middle 30%%\n"
                 "  --hedge      fire a backup copy after the p95 hedge "
                 "delay\n"
                 "  --no-failover  static round-robin, no retries or "
                 "probes\n"
                 "  --slo-target  availability objective in (0,1) for "
                 "the burn-rate\n"
                 "                monitor (default 0.99)\n"
                 "  --json-out=PATH  cluster report (with the seed and "
                 "SLO verdict)\n"
                 "                   as JSON\n"
                 "  --trace-out=PATH  Chrome-trace timeline: per-host "
                 "health spans,\n"
                 "                    hedge/failover/probe instants "
                 "(pid 5), kept\n"
                 "                    per-request span trees, SLO "
                 "alerts (pid 7)\n"
                 "  --timeseries-out=PATH  windowed attempt/e2e latency "
                 "percentiles\n",
                 prog);
}

bool
parsePositive(const char *prog, const char *flag, const char *text,
              double min_value, double *out)
{
    char *end = nullptr;
    *out = std::strtod(text, &end);
    if (end == text || *end != '\0' || !(*out >= min_value)) {
        std::fprintf(stderr, "%s: bad %s '%s': expected a number >= %g\n",
                     prog, flag, text, min_value);
        usage(prog);
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    unsigned hosts = 4;
    unsigned stacks = 4;
    double load = 0.6;
    std::uint64_t seed = 1;
    bool kill = false;
    double straggler = 1.0;
    bool hedge = false;
    bool failover = true;
    double slo_target = 0.99;
    std::string json_out;
    std::string trace_out;
    std::string timeseries_out;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        double v = 0.0;
        if (arg.rfind("--trace-out=", 0) == 0) {
            trace_out = arg.substr(12);
        } else if (arg.rfind("--json-out=", 0) == 0) {
            json_out = arg.substr(11);
        } else if (arg.rfind("--timeseries-out=", 0) == 0) {
            timeseries_out = arg.substr(17);
        } else if ((arg == "--slo-target" && i + 1 < argc) ||
                   arg.rfind("--slo-target=", 0) == 0) {
            const char *text =
                arg.size() > 12 && arg[12] == '=' ? arg.c_str() + 13
                                                  : argv[++i];
            if (!parsePositive(argv[0], "--slo-target", text, 1e-9, &v))
                return 2;
            if (v >= 1.0) {
                std::fprintf(stderr,
                             "%s: bad --slo-target '%s': expected a "
                             "fraction in (0,1)\n",
                             argv[0], text);
                usage(argv[0]);
                return 2;
            }
            slo_target = v;
        } else if (arg == "--hosts" && i + 1 < argc) {
            if (!parsePositive(argv[0], "--hosts", argv[++i], 1.0, &v))
                return 2;
            hosts = static_cast<unsigned>(v);
        } else if (arg == "--stacks" && i + 1 < argc) {
            if (!parsePositive(argv[0], "--stacks", argv[++i], 1.0, &v))
                return 2;
            stacks = static_cast<unsigned>(v);
        } else if (arg == "--load" && i + 1 < argc) {
            if (!parsePositive(argv[0], "--load", argv[++i], 1e-9, &v))
                return 2;
            load = v;
        } else if ((arg == "--seed" && i + 1 < argc) ||
                   arg.rfind("--seed=", 0) == 0) {
            const char *text =
                arg[6] == '=' ? arg.c_str() + 7 : argv[++i];
            char *end = nullptr;
            seed = std::strtoull(text, &end, 0);
            if (end == text || *end != '\0') {
                std::fprintf(stderr, "%s: bad --seed '%s'\n", argv[0],
                             text);
                usage(argv[0]);
                return 2;
            }
        } else if (arg == "--kill") {
            kill = true;
        } else if (arg == "--straggler" && i + 1 < argc) {
            if (!parsePositive(argv[0], "--straggler", argv[++i], 1.0,
                               &v))
                return 2;
            straggler = v;
        } else if (arg == "--hedge") {
            hedge = true;
        } else if (arg == "--no-failover") {
            failover = false;
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                         arg.c_str());
            usage(argv[0]);
            return 2;
        }
    }

    LayerSpec fc;
    fc.kind = LayerSpec::Kind::Fc;
    fc.hidden = 512;
    fc.input = 512;
    fc.steps = 2;
    fc.pimEligible = true;
    AppSpec app;
    app.name = "cluster-fc512";
    app.layers = {fc};

    ClusterConfig config;
    config.system = SystemConfig::pimHbmSystem();
    config.system.numStacks = 1;
    config.numHosts = hosts;
    config.stacksPerHost = stacks;
    config.app = app;
    config.hedge.enabled = hedge;
    config.router.failover = failover;
    if (!failover)
        config.maxAttempts = 1;
    config.cache = std::make_shared<serve::ServiceTimeCache>();

    std::printf("calibrating batch-1 attempt time...\n");
    ClusterEngine probe(config);
    const double est_ns = probe.attemptEstimateNs();
    const double capacity_rps =
        static_cast<double>(hosts * stacks) * 1e9 / est_ns;
    config.deadlineNs = 30.0 * est_ns;
    config.router.health.probeIntervalNs = 8.0 * est_ns;

    const unsigned n = 10'000;
    const double offered = load * capacity_rps;
    const double horizon_ns = static_cast<double>(n) * 1e9 / offered;

    ClusterEngine engine(config);
    TraceSession trace;
    std::unique_ptr<RequestTracer> tracer;
    if (!trace_out.empty()) {
        engine.setTrace(&trace);
        RequestTracerConfig rc;
        rc.seed = seed;
        tracer = std::make_unique<RequestTracer>(rc);
        engine.setRequestTracer(tracer.get());
    }

    serve::ChaosConfig chaos_config;
    chaos_config.seed = seed ^ 0xc1a57e2;
    serve::ChaosCampaign chaos(chaos_config, 1);
    if (kill) {
        serve::HostFaultSpec f;
        f.kind = serve::HostFaultSpec::Kind::Crash;
        f.host = 0;
        f.startNs = 0.35 * horizon_ns;
        f.endNs = 0.65 * horizon_ns;
        chaos.addHostFault(f);
    }
    if (straggler > 1.0) {
        serve::HostFaultSpec f;
        f.kind = serve::HostFaultSpec::Kind::Straggler;
        f.host = 0;
        f.startNs = 0.35 * horizon_ns;
        f.endNs = 0.65 * horizon_ns;
        f.factor = straggler;
        chaos.addHostFault(f);
    }
    if (kill || straggler > 1.0)
        engine.setFaultModel(&chaos);

    std::printf("cluster: %u hosts x %u stacks, attempt %.1f us, "
                "capacity %.0f req/s\n",
                hosts, stacks, est_ns / 1e3, capacity_rps);
    std::printf("offered %.2fx capacity (%.0f req/s) over %.1f ms of "
                "virtual time, %u arrivals\n",
                load, offered, horizon_ns / 1e6, n);
    std::printf("failover %s, hedging %s%s%s\n\n",
                failover ? "on" : "off", hedge ? "on" : "off",
                kill ? ", host 0 killed mid-run" : "",
                straggler > 1.0 ? ", host 0 straggling" : "");

    // SLO monitor + timeseries share one window grid: 2% of the run.
    const double window_ns = horizon_ns / 50.0;
    SloMonitorConfig slo_config;
    slo_config.target = slo_target;
    slo_config.windowNs = window_ns;
    SloMonitor slo(slo_config);
    MetricsTimeseries timeseries(window_ns);
    if (!timeseries_out.empty()) {
        timeseries.trackHistogram("attempt_ns",
                                  &engine.attemptHistogram());
        timeseries.trackHistogram("e2e_ns", &engine.e2eHistogram());
    }

    const auto arrivals = serve::poissonArrivals(
        {serve::ArrivalSpec{0, offered}}, horizon_ns, seed);
    double next_mark = window_ns;
    const auto close_windows = [&](double upto) {
        while (next_mark <= upto) {
            engine.advanceTo(next_mark);
            slo.feed(engine.takeSloObservations());
            if (!timeseries_out.empty())
                timeseries.advanceTo(next_mark);
            next_mark += window_ns;
        }
    };
    for (const auto &a : arrivals) {
        close_windows(a.ns);
        engine.submit(std::max(a.ns, engine.nowNs()));
    }
    close_windows(horizon_ns);
    engine.drain();
    slo.feed(engine.takeSloObservations());
    slo.finish(engine.nowNs());
    if (!timeseries_out.empty())
        timeseries.finish(engine.nowNs());

    const ClusterReport r = engine.report();
    r.reconcile();

    if (tracer) {
        tracer->flush(trace);
        slo.emitTrace(trace);
    }

    std::printf("  %-5s %-11s %9s %8s %7s %7s %6s %6s\n", "host",
                "state", "dispatch", "fail", "probes", "trans", "util",
                "link");
    for (const auto &h : r.hosts) {
        std::printf("  %-5u %-11s %9llu %8llu %7llu %7llu %5.1f%% "
                    "%5.1f%%\n",
                    h.host, healthStateName(h.state),
                    static_cast<unsigned long long>(h.dispatches),
                    static_cast<unsigned long long>(h.failures),
                    static_cast<unsigned long long>(h.probes),
                    static_cast<unsigned long long>(h.transitions),
                    100.0 * h.utilization, 100.0 * h.linkUtilization);
    }

    std::printf("\ncompleted %llu / %llu (rejected %llu, shed %llu, "
                "timed out %llu, failed %llu)\n",
                static_cast<unsigned long long>(r.completed),
                static_cast<unsigned long long>(r.submitted),
                static_cast<unsigned long long>(r.rejected),
                static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.timedOut),
                static_cast<unsigned long long>(r.failed));
    std::printf("goodput %.0f req/s (%llu SLO violations), retries %llu, "
                "health transitions %llu\n",
                r.goodputRps,
                static_cast<unsigned long long>(r.sloViolations),
                static_cast<unsigned long long>(r.retries),
                static_cast<unsigned long long>(r.healthTransitions));
    if (hedge)
        std::printf("hedges: %llu fired, %llu wins, %llu cancels "
                    "(delay now %.1f us)\n",
                    static_cast<unsigned long long>(r.hedgesFired),
                    static_cast<unsigned long long>(r.hedgeWins),
                    static_cast<unsigned long long>(r.hedgeCancels),
                    engine.hedgeDelayNs() / 1e3);
    std::printf("e2e latency: p50 %.1f us, p95 %.1f us, p99 %.1f us, "
                "max %.1f us\n",
                r.e2e.p50Ns / 1e3, r.e2e.p95Ns / 1e3, r.e2e.p99Ns / 1e3,
                r.e2e.maxNs / 1e3);

    std::size_t fired = 0;
    for (const auto &tr : slo.transitions())
        fired += tr.firing ? 1 : 0;
    std::printf("slo(%.3f): %llu good / %llu bad over %zu windows, "
                "%zu alert firings\n",
                slo_target,
                static_cast<unsigned long long>(slo.totalGood()),
                static_cast<unsigned long long>(slo.totalBad()),
                slo.numWindows(), fired);
    if (tracer != nullptr) {
        std::printf("tail sampling: kept %zu / %llu traces (%llu "
                    "must-keep, %llu head, %llu slow)\n",
                    tracer->keptTraceIds().size(),
                    static_cast<unsigned long long>(tracer->tracesEnded()),
                    static_cast<unsigned long long>(
                        tracer->mustKeepCount()),
                    static_cast<unsigned long long>(
                        tracer->headSampledCount()),
                    static_cast<unsigned long long>(
                        tracer->slowKeptCount()));
    }

    if (!json_out.empty()) {
        std::ofstream os(json_out);
        if (!os) {
            std::fprintf(stderr, "%s: cannot open '%s'\n", argv[0],
                         json_out.c_str());
            return 1;
        }
        // Wrap the report so the seed rides along (replay provenance).
        os << "{\"seed\": " << seed << ", \"slo\": ";
        {
            JsonWriter w(os);
            slo.writeJson(w);
        }
        os << ", \"report\": " << r.toJson() << "}\n";
    }
    if (!timeseries_out.empty() &&
        !timeseries.writeFile(timeseries_out))
        return 1;
    if (!trace_out.empty() && !trace.writeFile(trace_out))
        return 1;
    return 0;
}
