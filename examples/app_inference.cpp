/**
 * @file
 * End-to-end application inference: run any of the paper's five
 * applications (Section VII-A) on the HBM baseline and the PIM-HBM
 * system, at a chosen batch size, and print the layer-level breakdown.
 *
 *   $ ./app_inference            # all apps, batch 1
 *   $ ./app_inference GNMT 2     # one app at batch 2
 *   $ ./app_inference GNMT 1 2.0 # ... with fault injection (rate 2.0):
 *                                # on-die ECC + scrubbing are enabled and
 *                                # a deterministic campaign corrupts the
 *                                # device before the PIM run; the stack
 *                                # must finish with correct results.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/trace.h"
#include "host/host_model.h"
#include "reliability/fault_injector.h"
#include "stack/app_runner.h"
#include "stack/preprocessor.h"
#include "stack/workloads.h"

using namespace pimsim;

namespace {

void
runOne(const AppSpec &app, unsigned batch, double inject_rate,
       unsigned threads, TraceSession *trace,
       const std::string &stats_json)
{
    PimSystem hbm_sys(SystemConfig::hbmSystem());
    hbm_sys.setThreads(threads);
    HostModel hbm_host(hbm_sys);
    AppRunner hbm(hbm_host, nullptr);

    SystemConfig pim_cfg = SystemConfig::pimHbmSystem();
    if (inject_rate > 0) {
        pim_cfg.geometry.onDieEcc = true;
        pim_cfg.controller.scrubEnabled = true;
        pim_cfg.controller.scrubInterval = 2000;
        pim_cfg.controller.scrubBurstsPerStep = 64;
    }
    PimSystem pim_sys(pim_cfg);
    pim_sys.setThreads(threads);
    HostModel pim_host(pim_sys);
    PimBlas blas(pim_sys);
    AppRunner pim(pim_host, &blas);
    pim_sys.setTraceSession(trace);
    blas.setTrace(trace);
    pim.setTrace(trace);

    if (inject_rate > 0) {
        // Seed the PIM region with one small kernel so DRAM faults have
        // touched rows to land on, then run a deterministic campaign.
        // Stuck-at cells planted here persist into the timed run below;
        // the runtime must scrub/correct/retry its way through them.
        Fp16Vector warm(256, Fp16(1.0f)), out;
        blas.relu(warm, out);
        FaultRates rates;
        rates.dramTransient = inject_rate;
        rates.dramStuck = inject_rate / 4;
        rates.dramBurst = inject_rate / 8;
        rates.pimCrf = inject_rate / 16;
        FaultInjector injector(pim_sys, rates, /*seed=*/0x7a11);
        injector.runCampaign(/*interval=*/2000, /*steps=*/8);
        std::printf("injected %llu faults into the PIM-HBM device "
                    "(rate %.2f, seed 0x7a11)\n",
                    static_cast<unsigned long long>(
                        injector.counts().total()),
                    inject_rate);
    }

    const AppRunResult h = hbm.runApp(app, batch);
    const AppRunResult p = pim.runApp(app, batch);

    std::printf("%-8s batch %u\n", app.name.c_str(), batch);
    std::printf("  HBM baseline: %10.2f ms  (LLC miss %.0f%%)\n",
                h.ns / 1e6, 100 * h.avgLlcMissRate);
    std::printf("  PIM-HBM:      %10.2f ms  (PIM kernels %.2f ms, host "
                "%.2f ms, launches %.2f ms over %llu calls)\n",
                p.ns / 1e6, p.pimNs / 1e6, p.hostNs / 1e6,
                p.launchNs / 1e6,
                static_cast<unsigned long long>(p.kernelLaunches));
    if (inject_rate > 0) {
        std::printf("  reliability:  ECC corrected %llu (scrub %llu), "
                    "uncorrectable %llu, kernel retries %llu, host "
                    "fallbacks %llu\n",
                    static_cast<unsigned long long>(
                        pim_sys.errorLog().corrected()),
                    static_cast<unsigned long long>(
                        pim_sys.totalCtrlStat("scrub.corrected")),
                    static_cast<unsigned long long>(
                        pim_sys.errorLog().uncorrectable()),
                    static_cast<unsigned long long>(p.pimRetries),
                    static_cast<unsigned long long>(p.hostFallbacks));
    }
    std::printf("  speedup: %.2fx\n\n", h.ns / p.ns);

    if (!stats_json.empty()) {
        std::ofstream os(stats_json);
        if (!os) {
            PIMSIM_FATAL("cannot open stats output '", stats_json, "'");
        }
        pim_sys.dumpStatsJson(os);
    }
}

void
printOffloadPlan(const AppSpec &app, unsigned batch)
{
    // What the runtime preprocessor (Section V-A) decides per layer.
    const PimPreprocessor pre(SystemConfig::pimHbmSystem());
    std::printf("offload plan for %s at batch %u:\n", app.name.c_str(),
                batch);
    unsigned idx = 0;
    for (const auto &layer : app.layers) {
        OffloadDecision d;
        const char *kind = "";
        switch (layer.kind) {
          case LayerSpec::Kind::Conv:
            d = pre.conv(layer.flops);
            kind = "conv";
            break;
          case LayerSpec::Kind::Lstm:
            d = pre.gemv(4 * layer.hidden, layer.input + layer.hidden,
                         batch);
            kind = "lstm";
            break;
          case LayerSpec::Kind::Fc:
            d = pre.gemv(layer.hidden, layer.input, batch);
            kind = "fc";
            break;
          case LayerSpec::Kind::Residual:
            d = pre.elementwise(layer.elements, 2);
            kind = "residual";
            break;
          case LayerSpec::Kind::BatchNorm:
            d = pre.elementwise(layer.elements, 1);
            kind = "bn";
            break;
        }
        std::printf("  layer %2u %-9s -> %s (est. PIM %.1f us, host "
                    "%.1f us)\n",
                    idx++, kind, d.usePim ? "PIM " : "host",
                    d.estimatedPimNs / 1e3, d.estimatedHostNs / 1e3);
    }
    std::printf("\n");
}

} // namespace

void
usage(const char *prog)
{
    std::fprintf(stderr,
                 "usage: %s [OPTIONS] [APP [BATCH [INJECT_RATE]]]\n"
                 "  APP          application name (e.g. GNMT, DS2)\n"
                 "  BATCH        positive integer batch size (default 1)\n"
                 "  INJECT_RATE  non-negative fault-injection rate "
                 "(default 0)\n"
                 "  --stats-json=PATH  dump PIM-system stats registry as "
                 "JSON (last app run)\n"
                 "  --trace-out=PATH   write a Chrome-trace timeline "
                 "(chrome://tracing, ui.perfetto.dev)\n"
                 "  --threads=N        simulation worker threads "
                 "(bit-identical results for any N)\n",
                 prog);
}

int
main(int argc, char **argv)
{
    setQuiet(true);

    std::string stats_json;
    std::string trace_out;
    unsigned threads = 1;
    std::vector<const char *> positional;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--stats-json=", 13) == 0) {
            stats_json = arg + 13;
        } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
            trace_out = arg + 12;
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            threads = static_cast<unsigned>(
                std::strtoul(arg + 10, nullptr, 0));
        } else if (std::strcmp(arg, "--help") == 0) {
            usage(argv[0]);
            return 0;
        } else if (std::strncmp(arg, "--", 2) == 0) {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0], arg);
            usage(argv[0]);
            return 2;
        } else {
            positional.push_back(arg);
        }
    }

    const char *which = !positional.empty() ? positional[0] : nullptr;

    unsigned batch = 1;
    if (positional.size() > 1) {
        char *end = nullptr;
        const unsigned long parsed = std::strtoul(positional[1], &end, 10);
        if (end == positional[1] || *end != '\0' || positional[1][0] == '-' ||
            parsed == 0 || parsed > 4096) {
            std::fprintf(stderr, "%s: bad BATCH '%s': expected an integer "
                         "in [1, 4096]\n", argv[0], positional[1]);
            usage(argv[0]);
            return 2;
        }
        batch = static_cast<unsigned>(parsed);
    }

    double inject_rate = 0.0;
    if (positional.size() > 2) {
        char *end = nullptr;
        inject_rate = std::strtod(positional[2], &end);
        if (end == positional[2] || *end != '\0' || !(inject_rate >= 0.0)) {
            std::fprintf(stderr, "%s: bad INJECT_RATE '%s': expected a "
                         "non-negative number\n", argv[0], positional[2]);
            usage(argv[0]);
            return 2;
        }
    }

    TraceSession trace;
    for (const auto &app : allApps()) {
        if (which && std::strcmp(which, app.name.c_str()) != 0)
            continue;
        if (which)
            printOffloadPlan(app, batch);
        runOne(app, batch, inject_rate, threads,
               trace_out.empty() ? nullptr : &trace, stats_json);
    }
    if (!trace_out.empty() && !trace.writeFile(trace_out))
        return 1;
    return 0;
}
